//! [`BlockDevice`]: the physical storage layer under the EM substrate.
//!
//! Every logical block the simulator meters now has a home on a *device*:
//! either [`MemDevice`] (the in-memory simulator that used to live inside
//! [`crate::BlockArray`]'s backing storage — the default, and the substrate
//! the golden I/O baselines are recorded against) or [`FileDevice`] (an
//! append-only data file plus a checksummed, generation-stamped catalog,
//! committed via write-temp/fsync/rename so every on-disk state after a
//! crash is either the old or the new catalog — never a mix).
//!
//! The device is deliberately *below* the meter: [`crate::CostModel`]
//! charges logical I/Os identically on every device, and physical traffic
//! (counted by [`CountingDevice`]) is validated against the meter by
//! experiment E23 instead of feeding it. Swapping `EMSIM_DEVICE=mem|file`
//! must therefore never move a golden baseline.
//!
//! # Durability contract
//!
//! A device buffers writes (the page cache): `write` makes a block visible
//! to `read` immediately (read-your-writes), but only [`BlockDevice::sync`]
//! makes it durable. [`BlockDevice::crash`] models power loss — staged
//! writes vanish, the last committed catalog survives, and
//! [`FileDevice::open`] (or `crash`, which re-runs the same pass) recovers:
//! it verifies the catalog's magic/generation/CRC, re-verifies every
//! committed block's payload CRC, and truncates the uncommitted data tail.
//!
//! # Fault kinds
//!
//! The physical fault kinds of [`FaultPlan`] are interpreted here:
//! `torn_write` persists only a prefix of a payload (detected later as
//! [`EmError::Corrupt`] by the payload CRC), `short_read` fails a read
//! retryably ([`EmError::Transient`]), and `crash_after` (`CrashPoint(n)`)
//! tears the `n`-th physical write and poisons the device — every later
//! operation fails with [`EmError::Io`] until the store is reopened.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use crate::error::EmError;
use crate::fault::{self, FaultPlan};
use crate::sync::{Arc, Mutex};

/// Which kind of physical substrate a device is — the key that
/// [`FaultPlan::scope`](crate::FaultPlan) gates on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceClass {
    /// In-memory simulator ([`MemDevice`]).
    Mem,
    /// File-backed store ([`FileDevice`]).
    File,
}

/// The physical address of a logical block: `(ns, array, block)`.
///
/// `ns` is a process-unique namespace drawn per meter (so two meters that
/// both allocate "array 0" never collide on a shared device), except for
/// *named* persistent arrays, which use the reserved namespace
/// [`NAMED_NS`] with a caller-chosen stable `array` so they can be found
/// again after reopening the store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// Namespace (meter identity, or [`NAMED_NS`] for named arrays).
    pub ns: u64,
    /// Array identity within the namespace.
    pub array: u64,
    /// Block index within the array.
    pub block: u64,
}

/// The reserved namespace of named persistent arrays (see
/// [`crate::BlockArray::new_named`]); names are caller-chosen and stable
/// across process restarts.
pub const NAMED_NS: u64 = u64::MAX;

/// Fixed-size blocks with read-your-writes visibility and explicit
/// durability. See the module docs for the contract.
pub trait BlockDevice: Send + Sync + std::fmt::Debug {
    /// Which class of substrate this is (gates fault-plan scope).
    fn class(&self) -> DeviceClass;

    /// Read back the payload of `id`: `Ok(None)` if the block was never
    /// written (structures that don't mirror payloads simply aren't
    /// checked), `Ok(Some(bytes))` on success, [`EmError::Corrupt`] when
    /// the stored CRC does not match, [`EmError::Transient`] on an
    /// injected short read (retry), [`EmError::Io`] when the device is
    /// poisoned or the OS call fails.
    fn read(&self, id: BlockId) -> Result<Option<Vec<u8>>, EmError>;

    /// Write `payload` as the new content of `id` (visible to `read`
    /// immediately, durable only after [`BlockDevice::sync`]).
    fn write(&self, id: BlockId, payload: &[u8]) -> Result<(), EmError>;

    /// Make every write so far durable: on [`FileDevice`] this fsyncs the
    /// data file and commits a new catalog generation atomically.
    fn sync(&self) -> Result<(), EmError>;

    /// Simulate power loss and restart: staged (unsynced) writes vanish,
    /// poisoning is cleared, and the device recovers to its last committed
    /// state ([`FileDevice`] re-runs the [`FileDevice::open`] pass).
    fn crash(&self);

    /// Number of distinct blocks currently visible to `read`.
    fn len(&self) -> u64;

    /// Whether no block is visible.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Completed sync generations (0 for a fresh store).
    fn generation(&self) -> u64;

    /// Sorted block indices currently visible under `(ns, array)` — the
    /// enumeration primitive recovery uses to rebuild a named array.
    fn blocks_of(&self, ns: u64, array: u64) -> Vec<u64>;
}

/// CRC-64 (ECMA-182 polynomial, reflected) over catalog bytes and block
/// payloads — the integrity check that makes torn writes *detected*
/// corruption instead of silent wrong answers.
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ CRC64_POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// CRC-64 of `bytes` (ECMA-182, reflected, init/xorout `!0`).
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC64_TABLE[((crc ^ u64::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// CRC input for a block: the address is mixed in so a payload that lands
/// at the wrong `(ns, array, block)` (a misdirected write) also fails.
fn payload_crc(id: BlockId, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(24 + payload.len());
    buf.extend_from_slice(&id.ns.to_le_bytes());
    buf.extend_from_slice(&id.array.to_le_bytes());
    buf.extend_from_slice(&id.block.to_le_bytes());
    buf.extend_from_slice(payload);
    crc64(&buf)
}

/// How many payload bytes a torn write actually persists: half, so the CRC
/// can't accidentally pass (an empty payload tears to empty and stays
/// consistent — a zero-length write has nothing to tear).
fn torn_len(full: usize) -> usize {
    full / 2
}

// ---------------------------------------------------------------------------
// MemDevice
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct StoredBlock {
    /// What the medium holds (a torn write stores only a prefix here).
    bytes: Vec<u8>,
    /// CRC of the payload the writer *intended* (so a torn prefix fails).
    crc: u64,
}

#[derive(Debug, Default)]
struct MemState {
    committed: HashMap<BlockId, StoredBlock>,
    staged: HashMap<BlockId, StoredBlock>,
    generation: u64,
    writes: u64,
    reads: u64,
    poisoned: bool,
}

/// The in-memory device: a faithful simulator of the durability contract
/// (staged vs committed state, crash discard, torn-write CRC detection)
/// with no real files. The default substrate of every meter.
#[derive(Debug, Default)]
pub struct MemDevice {
    plan: FaultPlan,
    state: Mutex<MemState>,
}

/// A placeholder path for [`EmError::Io`] raised by the in-memory device
/// (poisoned after a crash point); there is no real file.
const MEM_PATH: &str = "<mem>";

impl MemDevice {
    /// A fault-free in-memory device.
    pub fn new() -> Self {
        MemDevice::default()
    }

    /// An in-memory device subject to `plan`'s device fault kinds (already
    /// scope-filtered by the caller via [`FaultPlan::for_class`]).
    pub fn with_plan(plan: FaultPlan) -> Self {
        MemDevice {
            plan: plan.for_class(DeviceClass::Mem),
            state: Mutex::new(MemState::default()),
        }
    }

    fn lock(&self) -> crate::sync::MutexGuard<'_, MemState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl BlockDevice for MemDevice {
    fn class(&self) -> DeviceClass {
        DeviceClass::Mem
    }

    fn read(&self, id: BlockId) -> Result<Option<Vec<u8>>, EmError> {
        let mut st = self.lock();
        if st.poisoned {
            return Err(EmError::io(
                "pread",
                MEM_PATH,
                0,
                std::io::Error::other("device poisoned by crash point"),
            ));
        }
        let idx = st.reads;
        st.reads += 1;
        if self.plan.is_short_read(idx) {
            return Err(EmError::Transient { array_id: id.array, block: id.block });
        }
        let Some(stored) = st.staged.get(&id).or_else(|| st.committed.get(&id)) else {
            return Ok(None);
        };
        if payload_crc(id, &stored.bytes) != stored.crc {
            return Err(EmError::Corrupt { array_id: id.array, block: id.block });
        }
        Ok(Some(stored.bytes.clone()))
    }

    fn write(&self, id: BlockId, payload: &[u8]) -> Result<(), EmError> {
        let mut st = self.lock();
        if st.poisoned {
            return Err(EmError::io(
                "pwrite",
                MEM_PATH,
                0,
                std::io::Error::other("device poisoned by crash point"),
            ));
        }
        let idx = st.writes;
        st.writes += 1;
        let crc = payload_crc(id, payload);
        if self.plan.crash_after == Some(idx) {
            st.staged.insert(id, StoredBlock { bytes: payload[..torn_len(payload.len())].to_vec(), crc });
            st.poisoned = true;
            return Err(EmError::io(
                "pwrite",
                MEM_PATH,
                0,
                std::io::Error::other("crash point reached mid-write"),
            ));
        }
        let bytes = if self.plan.is_torn_write(idx) {
            payload[..torn_len(payload.len())].to_vec()
        } else {
            payload.to_vec()
        };
        st.staged.insert(id, StoredBlock { bytes, crc });
        Ok(())
    }

    fn sync(&self) -> Result<(), EmError> {
        let mut st = self.lock();
        if st.poisoned {
            return Err(EmError::io(
                "fsync",
                MEM_PATH,
                0,
                std::io::Error::other("device poisoned by crash point"),
            ));
        }
        let staged = std::mem::take(&mut st.staged);
        st.committed.extend(staged);
        st.generation += 1;
        Ok(())
    }

    fn crash(&self) {
        let mut st = self.lock();
        st.staged.clear();
        st.poisoned = false;
    }

    fn len(&self) -> u64 {
        let st = self.lock();
        let mut keys: Vec<&BlockId> = st.committed.keys().collect();
        keys.extend(st.staged.keys());
        keys.sort_unstable();
        keys.dedup();
        keys.len() as u64
    }

    fn generation(&self) -> u64 {
        self.lock().generation
    }

    fn blocks_of(&self, ns: u64, array: u64) -> Vec<u64> {
        let st = self.lock();
        let mut v: Vec<u64> = st
            .committed
            .keys()
            .chain(st.staged.keys())
            .filter(|id| id.ns == ns && id.array == array)
            .map(|id| id.block)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

// ---------------------------------------------------------------------------
// FileDevice
// ---------------------------------------------------------------------------

const CATALOG_MAGIC: &[u8; 8] = b"EMCATv01";
const CATALOG_NAME: &str = "catalog";
const CATALOG_TMP_NAME: &str = "catalog.tmp";
const DATA_NAME: &str = "data";

#[derive(Clone, Copy, Debug)]
struct CatEntry {
    offset: u64,
    len: u32,
    crc: u64,
}

/// What [`FileDevice::open`]'s recovery pass found — the observable
/// evidence that crash recovery actually ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Catalog generation recovered to.
    pub generation: u64,
    /// Blocks the committed catalog describes.
    pub committed_blocks: u64,
    /// Uncommitted data-file bytes truncated (the tail beyond the last
    /// committed extent — writes that never made it into a catalog).
    pub truncated_bytes: u64,
    /// Committed blocks whose payload CRC failed verification (torn
    /// writes from a lying disk; their reads surface
    /// [`EmError::Corrupt`]).
    pub corrupt_blocks: u64,
}

#[derive(Debug)]
struct FileState {
    data: fs::File,
    tail: u64,
    committed: HashMap<BlockId, CatEntry>,
    staged: HashMap<BlockId, CatEntry>,
    generation: u64,
    writes: u64,
    reads: u64,
    poisoned: bool,
    recovery: RecoveryReport,
}

/// The file-backed device: an append-only `data` file plus a `catalog`
/// mapping each [`BlockId`] to `(offset, len, crc)`.
///
/// The catalog carries a magic, a monotonically increasing generation and
/// a whole-file CRC-64, and is replaced atomically (write `catalog.tmp`,
/// fsync it, rename over `catalog`, fsync the directory), so a crash at
/// any point leaves either the previous or the new catalog — the
/// old-or-new invariant E23 tortures. Payload CRCs mix in the block
/// address, so torn and misdirected writes are detected on read.
#[derive(Debug)]
pub struct FileDevice {
    dir: PathBuf,
    plan: FaultPlan,
    state: Mutex<FileState>,
}

impl FileDevice {
    /// Open (or create) the store in `dir` with no device faults armed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, EmError> {
        FileDevice::open_with(dir, FaultPlan::none())
    }

    /// Open (or create) the store in `dir`, arming `plan`'s device fault
    /// kinds (scope-filtered to the file class).
    ///
    /// This is also the recovery pass: the catalog is validated
    /// (magic, version, footer CRC), every committed block's payload CRC
    /// is re-verified, and the uncommitted data tail is truncated. The
    /// findings are available from [`FileDevice::recovery`].
    pub fn open_with(dir: impl Into<PathBuf>, plan: FaultPlan) -> Result<Self, EmError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| EmError::io("mkdir", dir.clone(), 0, e))?;
        let data_path = dir.join(DATA_NAME);
        let data = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&data_path)
            .map_err(|e| EmError::io("open", data_path.clone(), 0, e))?;
        let mut state = FileState {
            data,
            tail: 0,
            committed: HashMap::new(),
            staged: HashMap::new(),
            generation: 0,
            writes: 0,
            reads: 0,
            poisoned: false,
            recovery: RecoveryReport::default(),
        };
        let dev = FileDevice {
            dir,
            plan: plan.for_class(DeviceClass::File),
            state: Mutex::new(state_placeholder()),
        };
        dev.recover_into(&mut state)?;
        *dev.lock() = state;
        Ok(dev)
    }

    /// The directory holding `data` and `catalog`.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// What the last recovery pass (open or crash) found.
    pub fn recovery(&self) -> RecoveryReport {
        self.lock().recovery
    }

    fn lock(&self) -> crate::sync::MutexGuard<'_, FileState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn data_path(&self) -> PathBuf {
        self.dir.join(DATA_NAME)
    }

    fn catalog_path(&self) -> PathBuf {
        self.dir.join(CATALOG_NAME)
    }

    /// Parse + verify the committed catalog and rebuild `state` from it:
    /// the recovery pass shared by [`FileDevice::open_with`] and
    /// [`BlockDevice::crash`].
    fn recover_into(&self, state: &mut FileState) -> Result<(), EmError> {
        let cat_path = self.catalog_path();
        let mut report = RecoveryReport::default();
        let mut committed = HashMap::new();
        let mut generation = 0u64;
        match fs::read(&cat_path) {
            Ok(bytes) => {
                let (gen, entries) = parse_catalog(&bytes)?;
                generation = gen;
                committed = entries;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(EmError::io("pread", cat_path, 0, e)),
        }
        // Stale temp catalogs from an interrupted commit are garbage by
        // construction (the rename never happened) — drop them.
        let _ = fs::remove_file(self.dir.join(CATALOG_TMP_NAME));
        let extent = committed
            .values()
            .map(|e| e.offset + u64::from(e.len))
            .max()
            .unwrap_or(0);
        let data_path = self.data_path();
        let data_len = state
            .data
            .metadata()
            .map_err(|e| EmError::io("stat", data_path.clone(), 0, e))?
            .len();
        if data_len > extent {
            // Truncate the uncommitted tail: those bytes belong to writes
            // that never reached a committed catalog.
            report.truncated_bytes = data_len - extent;
            state
                .data
                .set_len(extent)
                .map_err(|e| EmError::io("truncate", data_path.clone(), extent, e))?;
            // DURABILITY: the truncation itself must survive the next
            // crash, or recovered-then-crashed stores resurrect dead bytes.
            state
                .data
                .sync_data()
                .map_err(|e| EmError::io("fsync", data_path.clone(), 0, e))?;
        }
        // Eagerly re-verify every committed payload: recovery's promise is
        // that surviving blocks are either intact or *known* corrupt.
        for (id, entry) in &committed {
            let mut buf = vec![0u8; entry.len as usize];
            let intact = state.data.read_exact_at(&mut buf, entry.offset).is_ok()
                && payload_crc(*id, &buf) == entry.crc;
            if !intact {
                report.corrupt_blocks += 1;
            }
        }
        report.generation = generation;
        report.committed_blocks = committed.len() as u64;
        state.tail = extent;
        state.committed = committed;
        state.staged.clear();
        state.generation = generation;
        state.poisoned = false;
        state.recovery = report;
        Ok(())
    }

    /// Serialize and atomically install a new catalog generation.
    fn commit_catalog(&self, st: &mut FileState) -> Result<(), EmError> {
        let next_gen = st.generation + 1;
        let mut merged = st.committed.clone();
        merged.extend(st.staged.iter().map(|(k, v)| (*k, *v)));
        let bytes = serialize_catalog(next_gen, &merged);
        let tmp_path = self.dir.join(CATALOG_TMP_NAME);
        let cat_path = self.catalog_path();
        {
            let mut tmp = fs::File::create(&tmp_path)
                .map_err(|e| EmError::io("open", tmp_path.clone(), 0, e))?;
            tmp.write_all(&bytes)
                .map_err(|e| EmError::io("pwrite", tmp_path.clone(), 0, e))?;
            // DURABILITY: the temp catalog's bytes must be on the medium
            // *before* the rename publishes it, or a crash could expose a
            // renamed-but-empty catalog (rename can be reordered ahead of
            // data writes).
            tmp.sync_all()
                .map_err(|e| EmError::io("fsync", tmp_path.clone(), 0, e))?;
        }
        fs::rename(&tmp_path, &cat_path)
            .map_err(|e| EmError::io("rename", cat_path.clone(), 0, e))?;
        // DURABILITY: the rename lives in the directory; fsync the
        // directory entry so the *new* catalog (not the old one) is what a
        // post-crash open sees once sync() returns.
        let dirf = fs::File::open(&self.dir)
            .map_err(|e| EmError::io("open", self.dir.clone(), 0, e))?;
        dirf.sync_all()
            .map_err(|e| EmError::io("fsync", self.dir.clone(), 0, e))?;
        st.committed = merged;
        st.staged.clear();
        st.generation = next_gen;
        Ok(())
    }

    fn poisoned_err(&self, op: &'static str) -> EmError {
        EmError::io(
            op,
            self.data_path(),
            0,
            std::io::Error::other("device poisoned by crash point"),
        )
    }
}

/// An inert placeholder so the `FileDevice` can exist while recovery runs
/// (recovery needs `&self` for paths but builds the real state off-lock).
fn state_placeholder() -> FileState {
    FileState {
        // An unnamed handle is not expressible; reuse /dev/null which is
        // always openable and never read through this placeholder.
        data: fs::File::open("/dev/null").expect("/dev/null exists"),
        tail: 0,
        committed: HashMap::new(),
        staged: HashMap::new(),
        generation: 0,
        writes: 0,
        reads: 0,
        poisoned: false,
        recovery: RecoveryReport::default(),
    }
}

fn serialize_catalog(generation: u64, entries: &HashMap<BlockId, CatEntry>) -> Vec<u8> {
    let mut ids: Vec<&BlockId> = entries.keys().collect();
    ids.sort_unstable();
    let mut out = Vec::with_capacity(32 + entries.len() * 44);
    out.extend_from_slice(CATALOG_MAGIC);
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for id in ids {
        let e = &entries[id];
        out.extend_from_slice(&id.ns.to_le_bytes());
        out.extend_from_slice(&id.array.to_le_bytes());
        out.extend_from_slice(&id.block.to_le_bytes());
        out.extend_from_slice(&e.offset.to_le_bytes());
        out.extend_from_slice(&e.len.to_le_bytes());
        out.extend_from_slice(&e.crc.to_le_bytes());
    }
    let footer = crc64(&out);
    out.extend_from_slice(&footer.to_le_bytes());
    out
}

/// The catalog-is-corrupt sentinel: there is no logical block to blame, so
/// the whole-store address `(u64::MAX, u64::MAX)` is used.
fn catalog_corrupt() -> EmError {
    EmError::Corrupt { array_id: u64::MAX, block: u64::MAX }
}

fn parse_catalog(bytes: &[u8]) -> Result<(u64, HashMap<BlockId, CatEntry>), EmError> {
    let take_u64 = |b: &[u8], at: usize| -> u64 {
        u64::from_le_bytes(b[at..at + 8].try_into().expect("8 bytes"))
    };
    if bytes.len() < 32 || &bytes[..8] != CATALOG_MAGIC {
        return Err(catalog_corrupt());
    }
    let footer = take_u64(bytes, bytes.len() - 8);
    if crc64(&bytes[..bytes.len() - 8]) != footer {
        return Err(catalog_corrupt());
    }
    let generation = take_u64(bytes, 8);
    let count = take_u64(bytes, 16) as usize;
    if bytes.len() != 32 + count * 44 {
        return Err(catalog_corrupt());
    }
    let mut entries = HashMap::with_capacity(count);
    for i in 0..count {
        let at = 24 + i * 44;
        let id = BlockId {
            ns: take_u64(bytes, at),
            array: take_u64(bytes, at + 8),
            block: take_u64(bytes, at + 16),
        };
        let offset = take_u64(bytes, at + 24);
        let len = u32::from_le_bytes(bytes[at + 32..at + 36].try_into().expect("4 bytes"));
        let crc = take_u64(bytes, at + 36);
        entries.insert(id, CatEntry { offset, len, crc });
    }
    Ok((generation, entries))
}

impl BlockDevice for FileDevice {
    fn class(&self) -> DeviceClass {
        DeviceClass::File
    }

    fn read(&self, id: BlockId) -> Result<Option<Vec<u8>>, EmError> {
        let mut st = self.lock();
        if st.poisoned {
            return Err(self.poisoned_err("pread"));
        }
        let idx = st.reads;
        st.reads += 1;
        if self.plan.is_short_read(idx) {
            return Err(EmError::Transient { array_id: id.array, block: id.block });
        }
        let Some(entry) = st.staged.get(&id).or_else(|| st.committed.get(&id)).copied() else {
            return Ok(None);
        };
        let mut buf = vec![0u8; entry.len as usize];
        match st.data.read_exact_at(&mut buf, entry.offset) {
            Ok(()) => {}
            // A cataloged block with no bytes under it is corruption (a
            // truncated or misdirected store), not an I/O environment error.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(EmError::Corrupt { array_id: id.array, block: id.block });
            }
            Err(e) => return Err(EmError::io("pread", self.data_path(), entry.offset, e)),
        }
        if payload_crc(id, &buf) != entry.crc {
            return Err(EmError::Corrupt { array_id: id.array, block: id.block });
        }
        Ok(Some(buf))
    }

    fn write(&self, id: BlockId, payload: &[u8]) -> Result<(), EmError> {
        let mut st = self.lock();
        if st.poisoned {
            return Err(self.poisoned_err("pwrite"));
        }
        let idx = st.writes;
        st.writes += 1;
        let offset = st.tail;
        let crc = payload_crc(id, payload);
        let full_len = payload.len();
        if self.plan.crash_after == Some(idx) {
            // The crash interrupts this very pwrite: a prefix lands, the
            // catalog never learns of it, and the device is dead until
            // reopened.
            let _ = st.data.write_all_at(&payload[..torn_len(full_len)], offset);
            st.poisoned = true;
            return Err(EmError::io(
                "pwrite",
                self.data_path(),
                offset,
                std::io::Error::other("crash point reached mid-write"),
            ));
        }
        let persisted: &[u8] = if self.plan.is_torn_write(idx) {
            &payload[..torn_len(full_len)]
        } else {
            payload
        };
        st.data
            .write_all_at(persisted, offset)
            .map_err(|e| EmError::io("pwrite", self.data_path(), offset, e))?;
        // The writer believes the full payload landed: the entry records
        // the intended length and CRC, the tail advances past the gap.
        st.staged.insert(id, CatEntry { offset, len: full_len as u32, crc });
        st.tail = offset + full_len as u64;
        Ok(())
    }

    fn sync(&self) -> Result<(), EmError> {
        let mut st = self.lock();
        if st.poisoned {
            return Err(self.poisoned_err("fsync"));
        }
        // DURABILITY: payload bytes must hit the medium before the catalog
        // that points at them is published — the write-ahead order that
        // makes every committed entry readable after a crash.
        st.data
            .sync_data()
            .map_err(|e| EmError::io("fsync", self.data_path(), 0, e))?;
        self.commit_catalog(&mut st)
    }

    fn crash(&self) {
        let mut st = self.lock();
        let mut fresh = state_placeholder();
        std::mem::swap(&mut *st, &mut fresh);
        drop(fresh); // the old data handle; recovery reopens it
        if let Ok(data) = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.data_path())
        {
            st.data = data;
            if let Err(e) = self.recover_into(&mut st) {
                // A store whose catalog cannot be recovered is unusable;
                // surface that on every subsequent operation.
                st.recovery = RecoveryReport::default();
                st.poisoned = true;
                let _ = e;
            }
        } else {
            st.poisoned = true;
        }
    }

    fn len(&self) -> u64 {
        let st = self.lock();
        let mut keys: Vec<&BlockId> = st.committed.keys().collect();
        keys.extend(st.staged.keys());
        keys.sort_unstable();
        keys.dedup();
        keys.len() as u64
    }

    fn generation(&self) -> u64 {
        self.lock().generation
    }

    fn blocks_of(&self, ns: u64, array: u64) -> Vec<u64> {
        let st = self.lock();
        let mut v: Vec<u64> = st
            .committed
            .keys()
            .chain(st.staged.keys())
            .filter(|id| id.ns == ns && id.array == array)
            .map(|id| id.block)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

// ---------------------------------------------------------------------------
// CountingDevice
// ---------------------------------------------------------------------------

/// Physical traffic observed by a [`DeviceLedger`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceCounts {
    /// `read` calls (each is exactly one `pread` on [`FileDevice`]).
    pub preads: u64,
    /// `write` calls (each is exactly one `pwrite` on [`FileDevice`]).
    pub pwrites: u64,
    /// `sync` calls.
    pub syncs: u64,
    /// Payload bytes returned by successful, non-empty `read` calls —
    /// the quantity a block codec actually shrinks (see `emsim::codec`).
    pub bytes_read: u64,
    /// Payload bytes submitted to `write` calls.
    pub bytes_written: u64,
}

impl DeviceCounts {
    /// Counter-wise `self - earlier`, for before/after delta windows.
    #[must_use]
    pub fn since(&self, earlier: &DeviceCounts) -> DeviceCounts {
        DeviceCounts {
            preads: self.preads.saturating_sub(earlier.preads),
            pwrites: self.pwrites.saturating_sub(earlier.pwrites),
            syncs: self.syncs.saturating_sub(earlier.syncs),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
        }
    }
}

/// The single physical-traffic ledger implementation: operation counts
/// plus payload bytes, shared by [`CountingDevice`] and the per-meter
/// physical accounting on `CostModel` (one set of counters, not two
/// parallel ones). Attempts are counted whether or not they succeed,
/// because a failed syscall still went to the device; bytes are counted
/// for the payloads that actually crossed (returned on read, submitted
/// on write).
#[derive(Debug, Default)]
pub struct DeviceLedger {
    preads: crate::sync::atomic::AtomicU64,
    pwrites: crate::sync::atomic::AtomicU64,
    syncs: crate::sync::atomic::AtomicU64,
    bytes_read: crate::sync::atomic::AtomicU64,
    bytes_written: crate::sync::atomic::AtomicU64,
}

impl DeviceLedger {
    /// A fresh all-zero ledger.
    pub fn new() -> Self {
        DeviceLedger::default()
    }

    /// Record one `read` attempt returning `bytes` payload bytes.
    fn note_read(&self, bytes: u64) {
        use std::sync::atomic::Ordering::Relaxed;
        self.preads.fetch_add(1, Relaxed);
        self.bytes_read.fetch_add(bytes, Relaxed);
    }

    /// Record one `write` attempt submitting `bytes` payload bytes.
    fn note_write(&self, bytes: u64) {
        use std::sync::atomic::Ordering::Relaxed;
        self.pwrites.fetch_add(1, Relaxed);
        self.bytes_written.fetch_add(bytes, Relaxed);
    }

    /// Record one `sync` attempt.
    fn note_sync(&self) {
        self.syncs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// The counts so far.
    pub fn snapshot(&self) -> DeviceCounts {
        use std::sync::atomic::Ordering::Relaxed;
        DeviceCounts {
            preads: self.preads.load(Relaxed),
            pwrites: self.pwrites.load(Relaxed),
            syncs: self.syncs.load(Relaxed),
            bytes_read: self.bytes_read.load(Relaxed),
            bytes_written: self.bytes_written.load(Relaxed),
        }
    }
}

/// A transparent wrapper that counts physical operations — the instrument
/// behind E23's simulator-validation table (metered logical I/Os vs actual
/// `pread`/`pwrite` counts) and the feed for `CostModel`'s physical-bytes
/// accounting. All counting goes through one shared [`DeviceLedger`].
#[derive(Debug)]
pub struct CountingDevice {
    inner: Arc<dyn BlockDevice>,
    ledger: DeviceLedger,
}

impl CountingDevice {
    /// Wrap `inner`, counting every physical operation routed through it.
    pub fn new(inner: Arc<dyn BlockDevice>) -> Self {
        CountingDevice {
            inner,
            ledger: DeviceLedger::new(),
        }
    }

    /// The counts so far.
    pub fn counts(&self) -> DeviceCounts {
        self.ledger.snapshot()
    }
}

impl BlockDevice for CountingDevice {
    fn class(&self) -> DeviceClass {
        self.inner.class()
    }

    fn read(&self, id: BlockId) -> Result<Option<Vec<u8>>, EmError> {
        let out = self.inner.read(id);
        let bytes = match &out {
            Ok(Some(payload)) => payload.len() as u64,
            _ => 0,
        };
        self.ledger.note_read(bytes);
        out
    }

    fn write(&self, id: BlockId, payload: &[u8]) -> Result<(), EmError> {
        self.ledger.note_write(payload.len() as u64);
        self.inner.write(id, payload)
    }

    fn sync(&self) -> Result<(), EmError> {
        self.ledger.note_sync();
        // DURABILITY: pass-through — the wrapped device performs the real
        // data-fsync + catalog commit; counting must not change semantics.
        self.inner.sync()
    }

    fn crash(&self) {
        self.inner.crash();
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn generation(&self) -> u64 {
        self.inner.generation()
    }

    fn blocks_of(&self, ns: u64, array: u64) -> Vec<u64> {
        self.inner.blocks_of(ns, array)
    }
}

// ---------------------------------------------------------------------------
// Ambient device selection (EMSIM_DEVICE / EMSIM_DATA_DIR)
// ---------------------------------------------------------------------------

static AMBIENT_FILE: OnceLock<Option<Arc<FileDevice>>> = OnceLock::new();

/// The process-shared [`FileDevice`] when `EMSIM_DEVICE=file` is set
/// (backed by `EMSIM_DATA_DIR`, default a per-process temp directory);
/// `None` otherwise, in which case each meter gets a private
/// [`MemDevice`]. Read once per process, like the fault/trace ambients.
pub(crate) fn ambient_device() -> Option<Arc<dyn BlockDevice>> {
    AMBIENT_FILE
        .get_or_init(|| {
            if std::env::var("EMSIM_DEVICE").as_deref() != Ok("file") {
                return None;
            }
            let dir = std::env::var("EMSIM_DATA_DIR").map_or_else(
                |_| {
                    std::env::temp_dir().join(format!("emsim-data-{}", std::process::id()))
                },
                PathBuf::from,
            );
            let plan = fault::ambient_plan();
            let dev = FileDevice::open_with(dir, plan)
                .expect("EMSIM_DEVICE=file: opening the ambient FileDevice failed");
            Some(Arc::new(dev))
        })
        .clone()
        .map(|d| d as Arc<dyn BlockDevice>)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "emsim-device-test-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn id(ns: u64, array: u64, block: u64) -> BlockId {
        BlockId { ns, array, block }
    }

    fn both_devices(name: &str) -> Vec<Box<dyn BlockDevice>> {
        vec![
            Box::new(MemDevice::new()),
            Box::new(FileDevice::open(tmp_dir(name)).expect("open")),
        ]
    }

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn read_your_writes_before_sync() {
        for dev in both_devices("ryw") {
            assert!(dev.is_empty());
            dev.write(id(1, 2, 3), b"hello").expect("write");
            assert_eq!(dev.read(id(1, 2, 3)).expect("read"), Some(b"hello".to_vec()));
            assert_eq!(dev.read(id(1, 2, 4)).expect("read"), None);
            assert_eq!(dev.len(), 1);
            assert_eq!(dev.blocks_of(1, 2), vec![3]);
        }
    }

    #[test]
    fn crash_discards_staged_keeps_committed() {
        for dev in both_devices("crash_staged") {
            dev.write(id(0, 0, 0), b"durable").expect("write");
            dev.sync().expect("sync");
            dev.write(id(0, 0, 1), b"staged").expect("write");
            dev.crash();
            assert_eq!(dev.read(id(0, 0, 0)).expect("read"), Some(b"durable".to_vec()));
            assert_eq!(dev.read(id(0, 0, 1)).expect("read"), None, "unsynced write lost");
            assert_eq!(dev.generation(), 1);
        }
    }

    #[test]
    fn overwrite_visibility_tracks_latest() {
        for dev in both_devices("overwrite") {
            dev.write(id(0, 7, 0), b"v1").expect("write");
            dev.sync().expect("sync");
            dev.write(id(0, 7, 0), b"v2-longer").expect("write");
            assert_eq!(dev.read(id(0, 7, 0)).expect("read"), Some(b"v2-longer".to_vec()));
            dev.crash();
            assert_eq!(dev.read(id(0, 7, 0)).expect("read"), Some(b"v1".to_vec()));
        }
    }

    #[test]
    fn file_store_persists_across_reopen() {
        let dir = tmp_dir("reopen");
        {
            let dev = FileDevice::open(&dir).expect("open");
            dev.write(id(NAMED_NS, 9, 0), b"block-zero").expect("write");
            dev.write(id(NAMED_NS, 9, 1), b"block-one").expect("write");
            dev.sync().expect("sync");
            dev.write(id(NAMED_NS, 9, 2), b"never-synced").expect("write");
        }
        let dev = FileDevice::open(&dir).expect("reopen");
        let rec = dev.recovery();
        assert_eq!(rec.generation, 1);
        assert_eq!(rec.committed_blocks, 2);
        assert_eq!(rec.corrupt_blocks, 0);
        assert!(rec.truncated_bytes >= b"never-synced".len() as u64);
        assert_eq!(dev.read(id(NAMED_NS, 9, 0)).expect("read"), Some(b"block-zero".to_vec()));
        assert_eq!(dev.read(id(NAMED_NS, 9, 1)).expect("read"), Some(b"block-one".to_vec()));
        assert_eq!(dev.read(id(NAMED_NS, 9, 2)).expect("read"), None);
        assert_eq!(dev.blocks_of(NAMED_NS, 9), vec![0, 1]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_is_detected_as_corrupt() {
        let plan = FaultPlan::new(3).with_torn_write(1.0);
        for dev in [
            Box::new(MemDevice::with_plan(plan)) as Box<dyn BlockDevice>,
            Box::new(FileDevice::open_with(tmp_dir("torn"), plan).expect("open")),
        ] {
            dev.write(id(0, 1, 0), b"sixteen bytes!!!").expect("writer sees success");
            let e = dev.read(id(0, 1, 0)).expect_err("prefix must fail CRC");
            assert_eq!(e, EmError::Corrupt { array_id: 1, block: 0 });
        }
    }

    #[test]
    fn crash_point_tears_then_poisons_then_recovers() {
        let dir = tmp_dir("crashpoint");
        let plan = FaultPlan::new(0).with_crash_point(2);
        {
            let dev = FileDevice::open_with(&dir, plan).expect("open");
            dev.write(id(0, 0, 0), b"first-write!").expect("write 0");
            dev.write(id(0, 0, 1), b"second-write").expect("write 1");
            dev.sync().expect("sync");
            let e = dev.write(id(0, 0, 2), b"third-write!").expect_err("crash point");
            assert!(matches!(e, EmError::Io { op: "pwrite", .. }), "{e:?}");
            // Poisoned: everything fails now.
            assert!(dev.read(id(0, 0, 0)).is_err());
            assert!(dev.sync().is_err());
            assert!(dev.write(id(0, 0, 3), b"x").is_err());
        }
        // Reopen fault-free: the committed prefix survives, the torn tail
        // is truncated.
        let dev = FileDevice::open(&dir).expect("recovery");
        let rec = dev.recovery();
        assert_eq!(rec.generation, 1);
        assert_eq!(rec.committed_blocks, 2);
        assert_eq!(rec.corrupt_blocks, 0);
        assert!(rec.truncated_bytes > 0, "the torn third write was truncated");
        assert_eq!(dev.read(id(0, 0, 0)).expect("read"), Some(b"first-write!".to_vec()));
        assert_eq!(dev.read(id(0, 0, 1)).expect("read"), Some(b"second-write".to_vec()));
        assert_eq!(dev.read(id(0, 0, 2)).expect("read"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_reads_are_transient_and_clear() {
        let plan = FaultPlan::new(11).with_short_read(0.5);
        let dev = MemDevice::with_plan(plan);
        dev.write(id(0, 4, 0), b"payload").expect("write");
        let mut failures = 0;
        let mut successes = 0;
        for _ in 0..200 {
            match dev.read(id(0, 4, 0)) {
                Ok(Some(_)) => successes += 1,
                Err(EmError::Transient { array_id: 4, block: 0 }) => failures += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(failures > 0 && successes > 0, "{failures} fails / {successes} oks");
    }

    #[test]
    fn scoped_plan_does_not_fire_on_other_class() {
        // A file-scoped torn-write plan must be inert on MemDevice (the
        // satellite regression: armed FileDevice chaos can't bleed into
        // in-memory golden runs).
        let plan = FaultPlan::new(3)
            .with_torn_write(1.0)
            .with_scope(fault::FaultScope::File);
        let dev = MemDevice::with_plan(plan);
        dev.write(id(0, 1, 0), b"sixteen bytes!!!").expect("write");
        assert_eq!(
            dev.read(id(0, 1, 0)).expect("scoped-out plan is inert"),
            Some(b"sixteen bytes!!!".to_vec())
        );
    }

    #[test]
    fn catalog_corruption_is_detected_on_open() {
        let dir = tmp_dir("badcat");
        {
            let dev = FileDevice::open(&dir).expect("open");
            dev.write(id(0, 0, 0), b"data").expect("write");
            dev.sync().expect("sync");
        }
        // Flip a byte in the committed catalog: the footer CRC must catch it.
        let cat = dir.join(CATALOG_NAME);
        let mut bytes = fs::read(&cat).expect("read catalog");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&cat, bytes).expect("rewrite catalog");
        let err = FileDevice::open(&dir).expect_err("corrupt catalog");
        assert_eq!(err, EmError::Corrupt { array_id: u64::MAX, block: u64::MAX });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn counting_device_counts_physical_ops() {
        let inner: Arc<dyn BlockDevice> = Arc::new(MemDevice::new());
        let dev = CountingDevice::new(inner);
        dev.write(id(0, 0, 0), b"a").expect("write");
        dev.write(id(0, 0, 1), b"b").expect("write");
        dev.sync().expect("sync");
        let _ = dev.read(id(0, 0, 0)).expect("read");
        let _ = dev.read(id(0, 0, 9)).expect("read miss still counts");
        assert_eq!(
            dev.counts(),
            DeviceCounts {
                preads: 2,
                pwrites: 2,
                syncs: 1,
                bytes_read: 1,  // the hit returned 1 byte; the miss none
                bytes_written: 2,
            }
        );
        let later = DeviceCounts { preads: 5, bytes_read: 9, ..dev.counts() };
        assert_eq!(
            later.since(&dev.counts()),
            DeviceCounts { preads: 3, bytes_read: 8, ..DeviceCounts::default() }
        );
        assert_eq!(dev.class(), DeviceClass::Mem);
        assert_eq!(dev.len(), 2);
    }

    #[test]
    fn empty_payload_roundtrips() {
        for dev in both_devices("empty") {
            dev.write(id(0, 0, 0), b"").expect("write");
            dev.sync().expect("sync");
            dev.crash();
            assert_eq!(dev.read(id(0, 0, 0)).expect("read"), Some(Vec::new()));
        }
    }
}
