//! Structured tracing and metrics for the I/O meter.
//!
//! The aggregate counters of [`CostModel`](crate::CostModel) answer *how
//! many* block I/Os a query cost; this module answers *where they went*.
//! Query code opens phase-labelled spans ([`CostModel::span`]) around its
//! stages — sampling pass, prioritized probe, τ-selection, degradation
//! retry — and every metered event (block read, pool hit/miss, injected
//! fault, retry attempt) is attributed to the innermost span open on the
//! charging thread and forwarded to the meter's [`TraceSink`].
//!
//! # Zero cost when disabled
//!
//! No sink is installed by default (equivalently: the [`NoopSink`] is in
//! effect), and every hook in the hot path is a single relaxed atomic-flag
//! load. Crucially, sinks are **purely observational**: they never touch
//! the pool, the counters, or the fault plan, so golden I/O baselines and
//! fault-soak determinism hold bit-for-bit even with a sink armed — the
//! property the CI trace-smoke job asserts.
//!
//! # Sinks
//!
//! * [`RecordingSink`] — accumulates a [`CostReport`] (phase →
//!   [`PhaseStats`]); the backend of [`CostModel::explain`].
//! * [`ChromeTraceSink`] — records spans with wall-clock timestamps and
//!   renders Chrome-trace JSON (`chrome://tracing`, <https://ui.perfetto.dev>).
//! * [`NoopSink`] — discards everything; installing it is equivalent to
//!   having no sink.
//!
//! A process-global sink can be installed with [`install_global_sink`]
//! (mirroring [`fault::install_global_plan`](crate::install_global_plan)),
//! so a harness can trace every meter created afterwards — this is what
//! `exp_all --trace` uses.
//!
//! ```
//! use emsim::{CostModel, EmConfig};
//! use emsim::trace::phase;
//!
//! let m = CostModel::new(EmConfig::new(64));
//! let ((), report) = m.explain(|| {
//!     let _g = m.span(phase::PROBE);
//!     m.charge_reads(3);
//! });
//! assert_eq!(report.phase(phase::PROBE).reads, 3);
//! assert_eq!(report.total().reads, m.report().reads);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::OnceLock;

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use crate::sync::{Arc, Mutex};
use std::time::Instant;

use crate::cost::lock_recover;

/// The phase-label registry: every span opened by the workspace uses one of
/// these constants, so sinks, tables and docs agree on the taxonomy (see
/// OBSERVABILITY.md). Labels are ordinary `&'static str`s — downstream
/// crates may mint their own — but sticking to the registry keeps reports
/// mergeable.
pub mod phase {
    /// Structure construction: laying out arrays, building trees.
    pub const BUILD: &str = "build";
    /// Drawing or consulting a random sample (Theorem 2's sample ladder).
    pub const SAMPLE: &str = "sample";
    /// A monitored probe of an inner prioritized/max structure.
    pub const PROBE: &str = "probe";
    /// Threshold selection: k-selection / τ-computation over candidates.
    pub const SELECT: &str = "select";
    /// Sequential scan of a block array (the scan baseline, 2k ≥ n paths).
    pub const SCAN: &str = "scan";
    /// Verified exact fallback after the fast path failed or overflowed.
    pub const FALLBACK: &str = "fallback";
    /// A degradation-ladder rung taken after an unrecoverable fault.
    pub const DEGRADE: &str = "degrade";
    /// Rebuilding a structure (Theorem 2's drift-triggered rebuild).
    pub const REBUILD: &str = "rebuild";
    /// Batched execution machinery (locality ordering, shared scans).
    pub const BATCH: &str = "batch";
    /// Serving-loop queueing: group-commit window collection and the
    /// locality reorder before a batch executes (see SERVING.md).
    pub const QUEUE: &str = "queue";
    /// Serving-loop admission control: per-tenant budget verdicts taken at
    /// batch formation.
    pub const ADMIT: &str = "admit";
    /// Serving-loop load shedding: a request answered `Degraded` without
    /// touching the index (over-budget tenant or saturated queue).
    pub const SHED: &str = "shed";
    /// The catch-all phase for charges made outside any open span. Keeping
    /// it explicit is what makes per-phase totals sum *exactly* to the
    /// aggregate meter.
    pub const OTHER: &str = "other";
}

/// One metered event, forwarded to the [`TraceSink`] already attributed to
/// a phase. Counts mirror the aggregate [`IoReport`](crate::IoReport)
/// fields one-for-one, which is what makes per-phase sums reconcile with
/// the meter total.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// `n` read I/Os were charged.
    Reads(u64),
    /// `n` write I/Os were charged.
    Writes(u64),
    /// A buffer-pool hit (a free re-read).
    PoolHit,
    /// A buffer-pool miss (a read that cost an I/O).
    PoolMiss,
    /// An injected fault was observed (failed read or detected corruption).
    Fault,
    /// A retried read attempt (disk attempt number > 0).
    Retry,
    /// A span closed after this many wall-clock nanoseconds (inclusive of
    /// nested spans). Emitted once per [`SpanGuard`] drop; the only
    /// non-deterministic field, and it never feeds back into I/O counts.
    SpanNanos(u64),
}

/// A consumer of trace events and span boundaries.
///
/// Implementations must be cheap and must never call back into the meter:
/// sinks are observational by contract (golden I/O baselines are asserted
/// bit-identical with a sink armed). All methods are invoked on whatever
/// thread charged the I/O.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// A metered event, attributed to the innermost span open on the
    /// charging thread (or [`phase::OTHER`] outside any span).
    fn event(&self, phase: &'static str, event: TraceEvent);

    /// A span labelled `phase` opened on the current thread.
    fn span_begin(&self, _phase: &'static str) {}

    /// The matching span closed (spans nest LIFO per thread).
    fn span_end(&self, _phase: &'static str) {}

    /// Whether installing this sink should arm the meter's trace hooks.
    /// [`NoopSink`] returns `false`, making it literally free.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The do-nothing sink: discards every event. Installing it is equivalent
/// to clearing the sink — [`TraceSink::is_enabled`] returns `false`, so the
/// meter's fast path stays a single atomic load.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn event(&self, _phase: &'static str, _event: TraceEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// Per-phase event totals — one row of a [`CostReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Read I/Os charged in this phase.
    pub reads: u64,
    /// Write I/Os charged in this phase.
    pub writes: u64,
    /// Buffer-pool hits observed in this phase.
    pub pool_hits: u64,
    /// Buffer-pool misses observed in this phase.
    pub pool_misses: u64,
    /// Injected faults observed in this phase.
    pub faults: u64,
    /// Retried read attempts made in this phase.
    pub retries: u64,
    /// Wall-clock nanoseconds spent in spans labelled with this phase
    /// (inclusive: a nested span's time also counts toward its ancestors).
    /// Zero when the phase was only ever attributed via
    /// [`phase_scope`] (no span boundary, so no timing).
    pub nanos: u64,
}

impl PhaseStats {
    /// Total I/Os (reads + writes) in this phase.
    pub fn ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fold one event into the totals.
    pub fn absorb(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::Reads(n) => self.reads += n,
            TraceEvent::Writes(n) => self.writes += n,
            TraceEvent::PoolHit => self.pool_hits += 1,
            TraceEvent::PoolMiss => self.pool_misses += 1,
            TraceEvent::Fault => self.faults += 1,
            TraceEvent::Retry => self.retries += 1,
            TraceEvent::SpanNanos(n) => self.nanos += n,
        }
    }

    /// Component-wise sum.
    pub fn add(&self, other: &PhaseStats) -> PhaseStats {
        PhaseStats {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            pool_hits: self.pool_hits + other.pool_hits,
            pool_misses: self.pool_misses + other.pool_misses,
            faults: self.faults + other.faults,
            retries: self.retries + other.retries,
            nanos: self.nanos + other.nanos,
        }
    }
}

/// An EXPLAIN-style cost attribution: phase label → [`PhaseStats`].
///
/// Phases are kept in a `BTreeMap` so rendering order (and therefore every
/// exported artifact) is deterministic regardless of thread interleaving.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Per-phase totals, keyed by phase label.
    pub phases: BTreeMap<&'static str, PhaseStats>,
    /// Physical device traffic over the report's window (filled in by
    /// [`CostModel::explain`](crate::CostModel::explain); zero for reports
    /// assembled straight from a [`RecordingSink`]). Physical counters are
    /// not attributed to phases — mirroring is asynchronous to spans — so
    /// they ride alongside the logical table rather than inside it.
    pub physical: crate::device::DeviceCounts,
}

impl CostReport {
    /// The totals for one phase (zero if the phase never appeared).
    pub fn phase(&self, name: &str) -> PhaseStats {
        self.phases.get(name).copied().unwrap_or_default()
    }

    /// Sum over all phases. When the report covers everything a meter
    /// charged, this equals the meter's aggregate
    /// [`report`](crate::CostModel::report) delta — the reconciliation the
    /// trace property test asserts.
    pub fn total(&self) -> PhaseStats {
        self.phases
            .values()
            .fold(PhaseStats::default(), |acc, p| acc.add(p))
    }

    /// Render as an EXPLAIN-style text table.
    pub fn render(&self, title: &str) -> String {
        let mut out = format!("EXPLAIN {title}\n");
        out.push_str(
            "  phase      reads  writes  pool_hit  pool_miss  faults  retries   time_us\n",
        );
        for (name, p) in &self.phases {
            let _ = writeln!(
                out,
                "  {name:<9} {:>6}  {:>6}  {:>8}  {:>9}  {:>6}  {:>7}  {:>8}",
                p.reads,
                p.writes,
                p.pool_hits,
                p.pool_misses,
                p.faults,
                p.retries,
                p.nanos / 1_000
            );
        }
        let t = self.total();
        let _ = writeln!(
            out,
            "  {:<9} {:>6}  {:>6}  {:>8}  {:>9}  {:>6}  {:>7}  {:>8}",
            "TOTAL",
            t.reads,
            t.writes,
            t.pool_hits,
            t.pool_misses,
            t.faults,
            t.retries,
            t.nanos / 1_000
        );
        let ph = &self.physical;
        if *ph != crate::device::DeviceCounts::default() {
            let _ = writeln!(
                out,
                "  physical: {} preads / {} pwrites / {} syncs, {} bytes read / {} bytes written",
                ph.preads, ph.pwrites, ph.syncs, ph.bytes_read, ph.bytes_written
            );
        }
        out
    }

    /// Render as a Prometheus-style text exposition (counter families
    /// `emsim_phase_{reads,writes,pool_hits,pool_misses,faults,retries,nanos}`
    /// with a `phase` label).
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        type Field = fn(&PhaseStats) -> u64;
        let families: [(&str, Field); 7] = [
            ("emsim_phase_reads", |p| p.reads),
            ("emsim_phase_writes", |p| p.writes),
            ("emsim_phase_pool_hits", |p| p.pool_hits),
            ("emsim_phase_pool_misses", |p| p.pool_misses),
            ("emsim_phase_faults", |p| p.faults),
            ("emsim_phase_retries", |p| p.retries),
            ("emsim_phase_nanos", |p| p.nanos),
        ];
        for (family, get) in families {
            let _ = writeln!(out, "# TYPE {family} counter");
            for (name, p) in &self.phases {
                let _ = writeln!(out, "{family}{{phase=\"{name}\"}} {}", get(p));
            }
        }
        // Physical-traffic families (no `phase` label: the device below the
        // meter is not span-attributed). `emsim_physical_bytes_*` are the
        // counters the codec layer shrinks; the op counts contextualize them.
        let ph = &self.physical;
        let physical: [(&str, u64); 5] = [
            ("emsim_physical_preads", ph.preads),
            ("emsim_physical_pwrites", ph.pwrites),
            ("emsim_physical_syncs", ph.syncs),
            ("emsim_physical_bytes_read", ph.bytes_read),
            ("emsim_physical_bytes_written", ph.bytes_written),
        ];
        for (family, value) in physical {
            let _ = writeln!(out, "# TYPE {family} counter");
            let _ = writeln!(out, "{family} {value}");
        }
        out
    }
}

/// A sink that accumulates a [`CostReport`] — the backend of
/// [`CostModel::explain`].
///
/// ```
/// use std::sync::Arc;
/// use emsim::{CostModel, EmConfig};
/// use emsim::trace::{phase, RecordingSink};
///
/// let sink = Arc::new(RecordingSink::new());
/// let m = CostModel::new(EmConfig::new(64));
/// m.set_trace_sink(sink.clone());
/// {
///     let _g = m.span(phase::SCAN);
///     m.charge_reads(7);
/// }
/// m.charge_writes(1); // outside any span → phase "other"
/// let report = sink.report();
/// assert_eq!(report.phase(phase::SCAN).reads, 7);
/// assert_eq!(report.phase(phase::OTHER).writes, 1);
/// ```
#[derive(Debug, Default)]
pub struct RecordingSink {
    phases: Mutex<BTreeMap<&'static str, PhaseStats>>,
}

impl RecordingSink {
    /// An empty recording sink.
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// Snapshot the accumulated report.
    pub fn report(&self) -> CostReport {
        CostReport {
            phases: lock_recover(&self.phases).clone(),
            ..CostReport::default()
        }
    }

    /// Clear the accumulated report.
    pub fn reset(&self) {
        lock_recover(&self.phases).clear();
    }
}

impl TraceSink for RecordingSink {
    fn event(&self, phase: &'static str, event: TraceEvent) {
        lock_recover(&self.phases)
            .entry(phase)
            .or_default()
            .absorb(event);
    }
}

/// One completed span as exported by [`ChromeTraceSink`].
#[derive(Clone, Copy, Debug)]
struct ChromeSpan {
    phase: &'static str,
    tid: u64,
    ts_us: u64,
    dur_us: u64,
    stats: PhaseStats,
}

/// A sink that records spans with wall-clock timestamps and renders the
/// Chrome trace-event JSON format (open in `chrome://tracing` or
/// <https://ui.perfetto.dev>). Each completed span becomes one `"ph": "X"`
/// complete event whose `args` carry the I/O stats attributed while the
/// span was the innermost one on its thread (exclusive, not inclusive).
///
/// Wall-clock timestamps never feed back into I/O accounting, so traced
/// runs stay I/O-deterministic even though the JSON differs run to run.
#[derive(Debug)]
pub struct ChromeTraceSink {
    epoch: Instant,
    /// Per-thread stacks of open spans (spans nest LIFO per thread).
    open: Mutex<HashMap<u64, Vec<ChromeSpan>>>,
    done: Mutex<Vec<ChromeSpan>>,
}

impl ChromeTraceSink {
    /// A sink whose timestamps are relative to "now".
    pub fn new() -> Self {
        ChromeTraceSink {
            epoch: Instant::now(),
            open: Mutex::new(HashMap::new()),
            done: Mutex::new(Vec::new()),
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Number of completed spans recorded so far.
    pub fn len(&self) -> usize {
        lock_recover(&self.done).len()
    }

    /// Whether no span has completed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the Chrome trace-event JSON document.
    pub fn to_json(&self) -> String {
        let done = lock_recover(&self.done);
        let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
        for (i, s) in done.iter().enumerate() {
            let _ = writeln!(
                out,
                "{{\"name\": \"{}\", \"cat\": \"emsim\", \"ph\": \"X\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{\"reads\": {}, \
                 \"writes\": {}, \"pool_hits\": {}, \"pool_misses\": {}, \"faults\": {}, \
                 \"retries\": {}}}}}{}",
                s.phase,
                s.tid,
                s.ts_us,
                s.dur_us,
                s.stats.reads,
                s.stats.writes,
                s.stats.pool_hits,
                s.stats.pool_misses,
                s.stats.faults,
                s.stats.retries,
                if i + 1 == done.len() { "" } else { "," }
            );
        }
        out.push_str("]\n}\n");
        out
    }
}

impl Default for ChromeTraceSink {
    fn default() -> Self {
        ChromeTraceSink::new()
    }
}

impl TraceSink for ChromeTraceSink {
    fn event(&self, _phase: &'static str, event: TraceEvent) {
        let tid = thread_tag();
        if let Some(open) = lock_recover(&self.open).get_mut(&tid) {
            if let Some(top) = open.last_mut() {
                top.stats.absorb(event);
            }
        }
    }

    fn span_begin(&self, phase: &'static str) {
        let span = ChromeSpan {
            phase,
            tid: thread_tag(),
            ts_us: self.now_us(),
            dur_us: 0,
            stats: PhaseStats::default(),
        };
        lock_recover(&self.open).entry(span.tid).or_default().push(span);
    }

    fn span_end(&self, phase: &'static str) {
        let tid = thread_tag();
        let popped = lock_recover(&self.open)
            .get_mut(&tid)
            .and_then(std::vec::Vec::pop);
        if let Some(mut span) = popped {
            debug_assert_eq!(span.phase, phase, "spans nest LIFO per thread");
            span.dur_us = self.now_us().saturating_sub(span.ts_us);
            lock_recover(&self.done).push(span);
        }
    }
}

thread_local! {
    /// The stack of phases opened on this thread (innermost last). Shared
    /// by every meter the thread charges — phases are ambient per thread.
    static PHASE_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// A small stable per-thread tag for trace exporters.
    static THREAD_TAG: u64 = NEXT_THREAD_TAG.fetch_add(1, Relaxed);
}

static NEXT_THREAD_TAG: AtomicU64 = AtomicU64::new(1);

/// A small stable identifier for the current thread, used as the `tid` of
/// exported trace events (allocated in first-use order, starting at 1).
pub fn thread_tag() -> u64 {
    THREAD_TAG.with(|t| *t)
}

/// The innermost phase open on this thread, or [`phase::OTHER`].
pub fn current_phase() -> &'static str {
    PHASE_STACK.with(|s| s.borrow().last().copied().unwrap_or(phase::OTHER))
}

pub(crate) fn push_phase(phase: &'static str) {
    PHASE_STACK.with(|s| s.borrow_mut().push(phase));
}

pub(crate) fn pop_phase(phase: &'static str) {
    PHASE_STACK.with(|s| {
        let popped = s.borrow_mut().pop();
        debug_assert_eq!(popped, Some(phase), "spans must close LIFO");
        let _ = popped;
    });
}

/// RAII guard returned by [`CostModel::span`]: the phase stays the
/// thread's innermost attribution target until the guard drops. With no
/// sink armed the guard is inert (nothing was pushed, nothing is timed).
///
/// On drop the guard emits one [`TraceEvent::SpanNanos`] carrying the
/// span's inclusive wall-clock duration, so `CostReport`s show time next
/// to I/O counts. The timestamp never influences what gets charged —
/// traced runs stay I/O-deterministic.
#[derive(Debug)]
#[must_use = "a span attributes nothing unless it is held open"]
pub struct SpanGuard {
    pub(crate) sink: Option<Arc<dyn TraceSink>>,
    pub(crate) phase: &'static str,
    pub(crate) start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(sink) = self.sink.take() {
            if let Some(start) = self.start.take() {
                let nanos = start.elapsed().as_nanos() as u64;
                sink.event(self.phase, TraceEvent::SpanNanos(nanos));
            }
            pop_phase(self.phase);
            sink.span_end(self.phase);
        }
    }
}

/// RAII guard returned by [`phase_scope`]: labels the current thread's
/// work without notifying any sink.
#[derive(Debug)]
#[must_use = "a phase scope attributes nothing unless it is held open"]
pub struct PhaseScope {
    phase: &'static str,
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        pop_phase(self.phase);
    }
}

/// Label the current thread's work with `phase` until the guard drops —
/// for call sites with no [`CostModel`](crate::CostModel) in scope (the
/// generic batch drivers). Any meter charging on this thread attributes to
/// `phase` unless a nested [`CostModel::span`](crate::CostModel::span)
/// overrides it; unlike a span, no `span_begin`/`span_end` is emitted, so
/// exporters see only the attribution, not a span boundary.
pub fn phase_scope(phase: &'static str) -> PhaseScope {
    push_phase(phase);
    PhaseScope { phase }
}

/// The process-global sink, if installed; inherited by every
/// [`CostModel`](crate::CostModel) created afterwards.
static GLOBAL_SINK: OnceLock<Mutex<Option<Arc<dyn TraceSink>>>> = OnceLock::new();
static GLOBAL_SINK_ACTIVE: AtomicBool = AtomicBool::new(false);

fn global_slot() -> &'static Mutex<Option<Arc<dyn TraceSink>>> {
    GLOBAL_SINK.get_or_init(|| Mutex::new(None))
}

/// Install a process-global sink: every meter created afterwards starts
/// with it (explicit [`CostModel::set_trace_sink`](crate::CostModel::set_trace_sink)
/// calls still override per meter). Pair with [`clear_global_sink`]. This
/// is how `exp_all --trace` arms tracing across a whole experiment registry
/// without threading a sink through every build.
pub fn install_global_sink(sink: Arc<dyn TraceSink>) {
    let enabled = sink.is_enabled();
    *lock_recover(global_slot()) = Some(sink);
    GLOBAL_SINK_ACTIVE.store(enabled, Relaxed);
}

/// Remove the process-global sink installed by [`install_global_sink`].
pub fn clear_global_sink() {
    GLOBAL_SINK_ACTIVE.store(false, Relaxed);
    *lock_recover(global_slot()) = None;
}

/// The sink newly created meters inherit: the installed global sink, else
/// none.
pub fn ambient_sink() -> Option<Arc<dyn TraceSink>> {
    if !GLOBAL_SINK_ACTIVE.load(Relaxed) {
        return None;
    }
    lock_recover(global_slot()).clone()
}

/// A set of scalar samples with percentile queries — the latency / I/O
/// histograms `exp_all` embeds in `BENCH_results.json`.
///
/// ```
/// use emsim::trace::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=100 {
///     h.push(v as f64);
/// }
/// assert_eq!(h.p50(), 50.0);
/// assert_eq!(h.p95(), 95.0);
/// assert_eq!(h.p99(), 99.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample (NaN samples are ignored).
    pub fn push(&mut self, v: f64) {
        if !v.is_nan() {
            self.samples.push(v);
        }
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The nearest-rank percentile (`p` in `[0, 100]`), or 0.0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs are rejected at push"));
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// The median (50th percentile).
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// The 95th percentile.
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// The largest sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, EmConfig};
    use crate::fault::FaultPlan;

    #[test]
    fn noop_sink_is_disabled_and_silent() {
        let s = NoopSink;
        assert!(!s.is_enabled());
        s.event(phase::PROBE, TraceEvent::Reads(3)); // must not panic
        let m = CostModel::new(EmConfig::new(64));
        m.set_trace_sink(Arc::new(NoopSink));
        assert!(m.trace_sink().is_none(), "installing NoopSink arms nothing");
    }

    #[test]
    fn recording_sink_attributes_by_innermost_phase() {
        let sink = Arc::new(RecordingSink::new());
        let m = CostModel::new(EmConfig::new(64));
        m.set_trace_sink(sink.clone());
        {
            let _outer = m.span(phase::PROBE);
            m.charge_reads(2);
            {
                let _inner = m.span(phase::SELECT);
                m.charge_reads(5);
            }
            m.charge_writes(1);
        }
        m.charge_reads(10); // no span open → "other"
        let r = sink.report();
        assert_eq!(r.phase(phase::PROBE).reads, 2);
        assert_eq!(r.phase(phase::PROBE).writes, 1);
        assert_eq!(r.phase(phase::SELECT).reads, 5);
        assert_eq!(r.phase(phase::OTHER).reads, 10);
        let agg = m.report();
        assert_eq!(r.total().reads, agg.reads);
        assert_eq!(r.total().writes, agg.writes);
    }

    #[test]
    fn pool_and_fault_events_reconcile_with_the_meter() {
        let plan = FaultPlan::new(5).with_permanent(1.0);
        let sink = Arc::new(RecordingSink::new());
        let m = CostModel::with_faults(EmConfig::with_memory(64, 4), FaultPlan::none());
        m.set_trace_sink(sink.clone());
        let _g = m.span(phase::SCAN);
        m.touch(0, 0); // miss
        m.touch(0, 0); // hit
        m.set_fault_plan(plan);
        assert!(m.try_touch(0, 9, 0).is_err());
        assert!(m.try_touch(0, 9, 1).is_err()); // a retry attempt
        m.record_fault(); // checksum detection above the read path
        let r = sink.report();
        let p = r.phase(phase::SCAN);
        let agg = m.report();
        assert_eq!(p.reads, agg.reads);
        assert_eq!(p.pool_hits, agg.pool_hits);
        assert_eq!(p.pool_misses, agg.pool_misses);
        assert_eq!(p.faults, agg.faults);
        assert_eq!(p.retries, 1);
    }

    #[test]
    fn explain_restores_the_previous_sink() {
        let outer = Arc::new(RecordingSink::new());
        let m = CostModel::new(EmConfig::new(64));
        m.set_trace_sink(outer.clone());
        let ((), report) = m.explain(|| {
            let _g = m.span(phase::FALLBACK);
            m.charge_reads(4);
        });
        assert_eq!(report.phase(phase::FALLBACK).reads, 4);
        assert_eq!(
            outer.report().total(),
            PhaseStats::default(),
            "the inner explain sink captured the charges"
        );
        m.charge_reads(1);
        assert_eq!(outer.report().total().reads, 1, "outer sink restored");
    }

    #[test]
    fn spans_without_a_sink_are_inert() {
        let m = CostModel::new(EmConfig::new(64));
        let g = m.span(phase::PROBE);
        assert_eq!(current_phase(), phase::OTHER, "no sink: nothing pushed");
        drop(g);
        m.charge_reads(1);
        assert_eq!(m.report().reads, 1);
    }

    #[test]
    fn scoped_children_inherit_the_sink() {
        let sink = Arc::new(RecordingSink::new());
        let m = CostModel::new(EmConfig::with_memory(64, 4));
        m.set_trace_sink(sink.clone());
        {
            let trial = m.scoped();
            let _g = trial.span(phase::BATCH);
            trial.touch(0, 0);
        }
        assert_eq!(sink.report().phase(phase::BATCH).reads, 1);
        // Rollup absorbs counters without re-emitting events: the sink saw
        // the read exactly once, and it still reconciles with the parent.
        assert_eq!(sink.report().total().reads, m.report().reads);
    }

    #[test]
    fn phase_scope_labels_without_a_model() {
        let sink = Arc::new(RecordingSink::new());
        let m = CostModel::new(EmConfig::new(64));
        m.set_trace_sink(sink.clone());
        {
            let _b = phase_scope(phase::BATCH);
            m.charge_reads(3);
            {
                let _g = m.span(phase::SCAN); // nested span still wins
                m.charge_reads(1);
            }
        }
        assert_eq!(current_phase(), phase::OTHER);
        assert_eq!(sink.report().phase(phase::BATCH).reads, 3);
        assert_eq!(sink.report().phase(phase::SCAN).reads, 1);
    }

    #[test]
    fn chrome_sink_produces_complete_events() {
        let sink = Arc::new(ChromeTraceSink::new());
        let m = CostModel::new(EmConfig::new(64));
        m.set_trace_sink(sink.clone());
        {
            let _g = m.span(phase::PROBE);
            m.charge_reads(3);
        }
        {
            let _g = m.span(phase::SELECT);
            m.charge_writes(2);
        }
        assert_eq!(sink.len(), 2);
        let json = sink.to_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"probe\""));
        assert!(json.contains("\"reads\": 3"));
        assert!(json.contains("\"writes\": 2"));
    }

    #[test]
    fn global_sink_arms_new_meters() {
        // Serialized within this test binary only; cleared before return.
        let sink = Arc::new(RecordingSink::new());
        install_global_sink(sink.clone());
        let m = CostModel::new(EmConfig::new(64));
        assert!(m.trace_sink().is_some());
        m.charge_reads(2);
        assert_eq!(sink.report().phase(phase::OTHER).reads, 2);
        clear_global_sink();
        let m2 = CostModel::new(EmConfig::new(64));
        assert!(m2.trace_sink().is_none());
        assert!(ambient_sink().is_none());
    }

    #[test]
    fn report_renders_explain_and_prometheus() {
        let mut phases = BTreeMap::new();
        phases.insert(
            phase::PROBE,
            PhaseStats {
                reads: 12,
                pool_hits: 3,
                ..PhaseStats::default()
            },
        );
        phases.insert(
            phase::SCAN,
            PhaseStats {
                reads: 40,
                writes: 2,
                ..PhaseStats::default()
            },
        );
        let mut r = CostReport { phases, ..CostReport::default() };
        let text = r.render("theorem1 query");
        assert!(text.contains("EXPLAIN theorem1 query"));
        assert!(text.contains("probe"));
        assert!(text.contains("TOTAL"));
        assert!(!text.contains("physical:"), "all-zero physical row is elided");
        let prom = r.prometheus();
        assert!(prom.contains("# TYPE emsim_phase_reads counter"));
        assert!(prom.contains("emsim_phase_reads{phase=\"scan\"} 40"));
        assert!(prom.contains("# TYPE emsim_physical_bytes_read counter"));
        assert!(prom.contains("emsim_physical_bytes_read 0"));
        assert_eq!(r.total().reads, 52);

        r.physical = crate::device::DeviceCounts {
            preads: 4,
            bytes_read: 160,
            ..crate::device::DeviceCounts::default()
        };
        let text = r.render("with physical");
        assert!(text.contains("physical: 4 preads"));
        assert!(text.contains("160 bytes read"));
        let prom = r.prometheus();
        assert!(prom.contains("emsim_physical_bytes_read 160"));
        assert!(prom.contains("emsim_physical_preads 4"));
    }

    #[test]
    fn histogram_percentiles_use_nearest_rank() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0.0);
        h.push(10.0);
        assert_eq!((h.p50(), h.p95(), h.p99()), (10.0, 10.0, 10.0));
        for v in [20.0, 30.0, 40.0] {
            h.push(v);
        }
        assert_eq!(h.p50(), 20.0);
        assert_eq!(h.max(), 40.0);
        h.push(f64::NAN);
        assert_eq!(h.len(), 4, "NaN samples are dropped");
    }
}
