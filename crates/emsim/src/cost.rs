//! The I/O cost meter shared by every structure in the workspace.
//!
//! A [`CostModel`] fixes the EM parameters `B` (words per block) and `M`
//! (words of memory), counts block reads and writes, and optionally routes
//! every access through an LRU buffer pool of `M/B` frames so that re-reads
//! of memory-resident blocks are free — exactly the accounting of the
//! Aggarwal–Vitter model the paper works in (§1.1).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use crate::pool::LruPool;

/// Parameters of the external-memory machine.
///
/// The paper assumes `B ≥ 64` for its constants to work out ((10), (11) in
/// §3.2) and `M ≥ 2B`; [`EmConfig::new`] does not enforce the former so that
/// the RAM model (`B = O(1)`, §1.1) can be simulated with the same code, but
/// reduction implementations that rely on `B ≥ 64` assert it themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmConfig {
    /// Words per disk block (the paper's `B`).
    pub b: usize,
    /// Number of block frames the buffer pool may hold (`M/B`).
    /// `0` disables caching entirely: every block touch is one I/O.
    pub mem_blocks: usize,
}

impl EmConfig {
    /// A machine with block size `b` words and no buffer pool.
    pub fn new(b: usize) -> Self {
        assert!(b >= 1, "block size must be positive");
        EmConfig { b, mem_blocks: 0 }
    }

    /// A machine with block size `b` and a buffer pool of `mem_blocks` frames.
    pub fn with_memory(b: usize, mem_blocks: usize) -> Self {
        assert!(b >= 1, "block size must be positive");
        EmConfig { b, mem_blocks }
    }

    /// The RAM model: unit-size blocks, no cache (§1.1: "by setting M and B
    /// to appropriate constants, all our EM results also hold in RAM").
    pub fn ram() -> Self {
        EmConfig { b: 1, mem_blocks: 0 }
    }

    /// How many `T` items fit in one block (at least 1; a word is 8 bytes).
    pub fn items_per_block<T>(&self) -> usize {
        let words = std::mem::size_of::<T>().div_ceil(8).max(1);
        (self.b / words).max(1)
    }
}

#[derive(Debug)]
struct Inner {
    config: EmConfig,
    reads: Cell<u64>,
    writes: Cell<u64>,
    pool: RefCell<LruPool>,
    next_array_id: Cell<u64>,
    /// Per-array read counts, populated only while tracing is on.
    trace: RefCell<Option<HashMap<u64, u64>>>,
}

/// A cheaply-cloneable handle to the shared I/O meter.
///
/// All structures built against the same `CostModel` charge the same
/// counters, so a composite structure (e.g. a Theorem 1 reduction wrapping a
/// hierarchy of prioritized structures) is measured end to end.
#[derive(Clone, Debug)]
pub struct CostModel {
    inner: Rc<Inner>,
}

/// A snapshot of the meter, as returned by [`CostModel::report`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoReport {
    /// Block reads charged so far.
    pub reads: u64,
    /// Block writes charged so far.
    pub writes: u64,
}

impl IoReport {
    /// Total I/Os (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl CostModel {
    /// Create a meter for the given machine.
    pub fn new(config: EmConfig) -> Self {
        CostModel {
            inner: Rc::new(Inner {
                config,
                reads: Cell::new(0),
                writes: Cell::new(0),
                pool: RefCell::new(LruPool::new(config.mem_blocks)),
                next_array_id: Cell::new(0),
                trace: RefCell::new(None),
            }),
        }
    }

    /// Convenience: a meter for the RAM model.
    pub fn ram() -> Self {
        CostModel::new(EmConfig::ram())
    }

    /// The machine parameters.
    pub fn config(&self) -> EmConfig {
        self.inner.config
    }

    /// Words per block (`B`).
    pub fn b(&self) -> usize {
        self.inner.config.b
    }

    /// Allocate a fresh identifier for a block-addressed structure (a
    /// [`crate::BlockArray`], a tree's node arena, …) — used as the high
    /// bits of buffer-pool keys so distinct structures never collide.
    pub fn new_array_id(&self) -> u64 {
        let id = self.inner.next_array_id.get();
        self.inner.next_array_id.set(id + 1);
        id
    }

    /// Charge the read of one specific block, going through the buffer pool:
    /// a pool hit is free, a miss costs one read I/O.
    pub fn touch(&self, array_id: u64, block_idx: u64) {
        if self.inner.config.mem_blocks != 0 {
            let mut pool = self.inner.pool.borrow_mut();
            if pool.access(array_id, block_idx) {
                return; // pool hit: free
            }
        }
        self.inner.reads.set(self.inner.reads.get() + 1);
        if let Some(trace) = self.inner.trace.borrow_mut().as_mut() {
            *trace.entry(array_id).or_insert(0) += 1;
        }
    }

    /// Start recording per-structure read counts (keyed by the array id each
    /// structure drew from [`CostModel::new_array_id`]). Resets any previous
    /// trace. Only `touch`-based reads are attributed; bulk `charge_*` calls
    /// have no structure identity.
    pub fn start_trace(&self) {
        *self.inner.trace.borrow_mut() = Some(HashMap::new());
    }

    /// Stop tracing and return `(array_id, reads)` pairs, heaviest first.
    pub fn stop_trace(&self) -> Vec<(u64, u64)> {
        let map = self.inner.trace.borrow_mut().take().unwrap_or_default();
        let mut v: Vec<(u64, u64)> = map.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1));
        v
    }

    /// Charge `n` read I/Os unconditionally (for sequential scans, whose
    /// blocks would evict each other anyway).
    pub fn charge_reads(&self, n: u64) {
        self.inner.reads.set(self.inner.reads.get() + n);
    }

    /// Charge `n` write I/Os.
    pub fn charge_writes(&self, n: u64) {
        self.inner.writes.set(self.inner.writes.get() + n);
    }

    /// Charge the cost of sequentially scanning `items` items of type `T`:
    /// `⌈items / (B/words(T))⌉` reads.
    pub fn charge_scan<T>(&self, items: usize) {
        if items == 0 {
            return;
        }
        let per = self.inner.config.items_per_block::<T>();
        self.charge_reads(items.div_ceil(per) as u64);
    }

    /// Read the counters.
    pub fn report(&self) -> IoReport {
        IoReport {
            reads: self.inner.reads.get(),
            writes: self.inner.writes.get(),
        }
    }

    /// Zero the counters (the buffer pool is *not* flushed; use
    /// [`CostModel::clear_pool`] for a cold-cache measurement).
    pub fn reset(&self) {
        self.inner.reads.set(0);
        self.inner.writes.set(0);
    }

    /// Empty the buffer pool, so the next measurement starts cold.
    pub fn clear_pool(&self) {
        self.inner.pool.borrow_mut().clear();
    }

    /// Run `f` and return its result together with the I/Os it charged.
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, IoReport) {
        let before = self.report();
        let out = f();
        let after = self.report();
        (
            out,
            IoReport {
                reads: after.reads - before.reads,
                writes: after.writes - before.writes,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_per_block_rounds_down_but_is_positive() {
        let c = EmConfig::new(64);
        assert_eq!(c.items_per_block::<u64>(), 64);
        assert_eq!(c.items_per_block::<[u64; 4]>(), 16);
        // An item larger than a block still "fits" one per block.
        assert_eq!(c.items_per_block::<[u64; 100]>(), 1);
        // Sub-word items round up to one word.
        assert_eq!(c.items_per_block::<u8>(), 64);
    }

    #[test]
    fn charge_scan_matches_ceiling() {
        let m = CostModel::new(EmConfig::new(64));
        m.charge_scan::<u64>(0);
        assert_eq!(m.report().reads, 0);
        m.charge_scan::<u64>(1);
        assert_eq!(m.report().reads, 1);
        m.reset();
        m.charge_scan::<u64>(64);
        assert_eq!(m.report().reads, 1);
        m.reset();
        m.charge_scan::<u64>(65);
        assert_eq!(m.report().reads, 2);
    }

    #[test]
    fn pool_hits_are_free() {
        let m = CostModel::new(EmConfig::with_memory(64, 2));
        m.touch(0, 0);
        m.touch(0, 0);
        m.touch(0, 0);
        assert_eq!(m.report().reads, 1);
        m.touch(0, 1);
        m.touch(0, 2); // evicts block 0
        m.touch(0, 0); // miss again
        assert_eq!(m.report().reads, 4);
    }

    #[test]
    fn no_pool_means_every_touch_pays() {
        let m = CostModel::new(EmConfig::new(64));
        m.touch(0, 0);
        m.touch(0, 0);
        assert_eq!(m.report().reads, 2);
    }

    #[test]
    fn measure_is_differential() {
        let m = CostModel::ram();
        m.charge_reads(5);
        let ((), d) = m.measure(|| m.charge_reads(3));
        assert_eq!(d.reads, 3);
        assert_eq!(m.report().reads, 8);
    }

    #[test]
    fn ram_model_has_unit_blocks() {
        assert_eq!(EmConfig::ram().items_per_block::<u64>(), 1);
    }

    #[test]
    fn trace_attributes_touches_per_array() {
        let m = CostModel::new(EmConfig::new(64));
        let a = m.new_array_id();
        let b = m.new_array_id();
        m.start_trace();
        m.touch(a, 0);
        m.touch(a, 1);
        m.touch(b, 0);
        m.charge_reads(10); // untraced bulk charge
        let t = m.stop_trace();
        assert_eq!(t, vec![(a, 2), (b, 1)]);
        // Trace off: nothing recorded, nothing returned.
        m.touch(a, 2);
        assert!(m.stop_trace().is_empty());
    }

    #[test]
    fn trace_skips_pool_hits() {
        let m = CostModel::new(EmConfig::with_memory(64, 4));
        let a = m.new_array_id();
        m.start_trace();
        m.touch(a, 0);
        m.touch(a, 0); // hit — free, untraced
        assert_eq!(m.stop_trace(), vec![(a, 1)]);
    }
}
