//! The I/O cost meter shared by every structure in the workspace.
//!
//! A [`CostModel`] fixes the EM parameters `B` (words per block) and `M`
//! (words of memory), counts block reads and writes, and optionally routes
//! every access through an LRU buffer pool of `M/B` frames so that re-reads
//! of memory-resident blocks are free — exactly the accounting of the
//! Aggarwal–Vitter model the paper works in (§1.1).
//!
//! # Concurrency
//!
//! The meter is `Send + Sync`: counters are atomics, the buffer pool and
//! the trace sit behind mutexes, so one `CostModel` may be hammered from
//! many threads and the totals stay exact. For parallel *measurements*
//! (concurrent experiment trials that must each see a deterministic,
//! isolated buffer pool) use [`CostModel::scoped`], which hands each
//! trial a private child meter whose totals roll up into the parent when
//! the [`ScopedMeter`] drops — no lock contention on the hot `touch`
//! path, and per-meter pool hits stay deterministic regardless of how
//! trials interleave.
//!
//! Every charge is additionally tallied into a plain thread-local
//! ([`thread_charged`]) so a harness can attribute total I/Os to whatever
//! ran on the current thread without threading a meter through every
//! call; [`credit_thread`] folds a worker thread's tally back into its
//! parent's.

use std::cell::Cell;
use std::collections::HashMap;
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use crate::sync::{Arc, Mutex, MutexGuard};

use crate::device::{self, BlockDevice, BlockId, DeviceClass};
use crate::error::EmError;
use crate::fault::{self, FaultPlan};
use crate::pool::LruPool;
use crate::sharded::ShardedPool;
use crate::trace::{self, CostReport, RecordingSink, SpanGuard, TraceEvent, TraceSink};

/// Lock a mutex, recovering from poisoning: the protected state (counters,
/// LRU recency lists, fault plans) stays internally consistent across a
/// panic, so a worker thread that dies mid-experiment must not cascade the
/// poison into every other experiment sharing the meter.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Which buffer-pool implementation a [`CostModel`] routes block touches
/// through. See DESIGN.md "Batched execution & buffer-pool concurrency".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PoolPolicy {
    /// One exact-LRU pool behind a single mutex — the default. Golden I/O
    /// baselines (`golden_smoke_ios.json`) and the fault-soak determinism
    /// checks are recorded against exact-LRU residency, so this policy must
    /// stay the default: its hit/miss outcomes are what those pins mean.
    #[default]
    Lru,
    /// [`ShardedPool`]: `shards` independently-locked CLOCK rings keyed by
    /// a hash of `(array_id, block_idx)`. For meters shared by many query
    /// threads; eviction approximates LRU (second chance), so residency —
    /// and thus hit counts under eviction pressure — may differ from
    /// [`PoolPolicy::Lru`].
    ShardedClock {
        /// Number of shards (each gets an equal slice of the `M/B` frames).
        shards: usize,
    },
}

impl PoolPolicy {
    /// A sharded pool with a shard count suited to multi-thread runs:
    /// enough shards that a preempted lock-holder rarely blocks anyone.
    pub fn sharded_default() -> Self {
        PoolPolicy::ShardedClock { shards: 16 }
    }
}

/// The buffer pool behind a meter, dispatched on [`PoolPolicy`]. The LRU
/// arm must stay charge-for-charge identical to the pre-policy code path.
#[derive(Debug)]
enum PoolImpl {
    Lru(Mutex<LruPool>),
    Sharded(ShardedPool),
}

impl PoolImpl {
    fn new(policy: PoolPolicy, capacity: usize) -> Self {
        match policy {
            PoolPolicy::Lru => PoolImpl::Lru(Mutex::new(LruPool::new(capacity))),
            PoolPolicy::ShardedClock { shards } => {
                PoolImpl::Sharded(ShardedPool::new(capacity, shards))
            }
        }
    }

    fn access(&self, array_id: u64, block_idx: u64) -> bool {
        match self {
            PoolImpl::Lru(p) => lock_recover(p).access(array_id, block_idx),
            PoolImpl::Sharded(p) => p.access(array_id, block_idx),
        }
    }

    fn probe(&self, array_id: u64, block_idx: u64) -> bool {
        match self {
            PoolImpl::Lru(p) => lock_recover(p).probe(array_id, block_idx),
            PoolImpl::Sharded(p) => p.probe(array_id, block_idx),
        }
    }

    fn admit(&self, array_id: u64, block_idx: u64) {
        match self {
            PoolImpl::Lru(p) => lock_recover(p).admit(array_id, block_idx),
            PoolImpl::Sharded(p) => p.admit(array_id, block_idx),
        }
    }

    fn record_miss(&self, array_id: u64, block_idx: u64) {
        match self {
            PoolImpl::Lru(p) => lock_recover(p).record_miss(),
            PoolImpl::Sharded(p) => p.record_miss(array_id, block_idx),
        }
    }

    fn stats(&self) -> (u64, u64) {
        match self {
            PoolImpl::Lru(p) => lock_recover(p).stats(),
            PoolImpl::Sharded(p) => p.stats(),
        }
    }

    /// Per-shard `(hits, misses)`; the LRU pool is one "shard".
    fn shard_stats(&self) -> Vec<(u64, u64)> {
        match self {
            PoolImpl::Lru(p) => vec![lock_recover(p).stats()],
            PoolImpl::Sharded(p) => p.shard_stats(),
        }
    }

    fn reset_stats(&self) {
        match self {
            PoolImpl::Lru(p) => lock_recover(p).reset_stats(),
            PoolImpl::Sharded(p) => p.reset_stats(),
        }
    }

    fn absorb_stats(&self, hits: u64, misses: u64) {
        match self {
            PoolImpl::Lru(p) => lock_recover(p).absorb_stats(hits, misses),
            PoolImpl::Sharded(p) => p.absorb_stats(hits, misses),
        }
    }

    fn clear(&self) {
        match self {
            PoolImpl::Lru(p) => lock_recover(p).clear(),
            PoolImpl::Sharded(p) => p.clear(),
        }
    }
}

/// Parameters of the external-memory machine.
///
/// The paper assumes `B ≥ 64` for its constants to work out ((10), (11) in
/// §3.2) and `M ≥ 2B`; [`EmConfig::new`] does not enforce the former so that
/// the RAM model (`B = O(1)`, §1.1) can be simulated with the same code, but
/// reduction implementations that rely on `B ≥ 64` assert it themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmConfig {
    /// Words per disk block (the paper's `B`).
    pub b: usize,
    /// Number of block frames the buffer pool may hold (`M/B`).
    /// `0` disables caching entirely: every block touch is one I/O.
    pub mem_blocks: usize,
}

impl EmConfig {
    /// A machine with block size `b` words and no buffer pool.
    pub fn new(b: usize) -> Self {
        assert!(b >= 1, "block size must be positive");
        EmConfig { b, mem_blocks: 0 }
    }

    /// A machine with block size `b` and a buffer pool of `mem_blocks` frames.
    pub fn with_memory(b: usize, mem_blocks: usize) -> Self {
        assert!(b >= 1, "block size must be positive");
        EmConfig { b, mem_blocks }
    }

    /// The RAM model: unit-size blocks, no cache (§1.1: "by setting M and B
    /// to appropriate constants, all our EM results also hold in RAM").
    pub fn ram() -> Self {
        EmConfig { b: 1, mem_blocks: 0 }
    }

    /// How many `T` items fit in one block (at least 1; a word is 8 bytes).
    pub fn items_per_block<T>(&self) -> usize {
        let words = std::mem::size_of::<T>().div_ceil(8).max(1);
        (self.b / words).max(1)
    }
}

thread_local! {
    static THREAD_READS: Cell<u64> = const { Cell::new(0) };
    static THREAD_WRITES: Cell<u64> = const { Cell::new(0) };
}

/// Cumulative I/Os charged *by the current thread* across every meter it
/// has touched since the thread started. Monotone; diff two snapshots to
/// attribute the I/Os of a code region without plumbing a meter into it.
pub fn thread_charged() -> IoReport {
    IoReport {
        reads: THREAD_READS.with(Cell::get),
        writes: THREAD_WRITES.with(Cell::get),
        ..IoReport::default()
    }
}

/// Add externally-measured charges to the current thread's tally — used by
/// fan-out helpers to credit worker threads' I/Os back to the thread that
/// spawned them, so [`thread_charged`] deltas stay exact across nested
/// parallelism.
pub fn credit_thread(r: IoReport) {
    THREAD_READS.with(|c| c.set(c.get() + r.reads));
    THREAD_WRITES.with(|c| c.set(c.get() + r.writes));
}

fn tally_reads(n: u64) {
    THREAD_READS.with(|c| c.set(c.get() + n));
}

fn tally_writes(n: u64) {
    THREAD_WRITES.with(|c| c.set(c.get() + n));
}

/// Allocator of per-meter device namespaces ([`BlockId::ns`]): deliberately
/// a plain `std` atomic even under loom (like `OnceLock` in `sync.rs`) —
/// it is an id fountain with no interleaving to explore, and making it a
/// loom atomic would burn model state on every meter construction.
static NEXT_NS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

#[derive(Debug)]
struct Inner {
    config: EmConfig,
    policy: PoolPolicy,
    reads: AtomicU64,
    writes: AtomicU64,
    pool: PoolImpl,
    next_array_id: AtomicU64,
    /// The physical storage under this meter (see [`crate::device`]),
    /// always behind a [`device::CountingDevice`] so physical operations
    /// and payload bytes land on one shared ledger. The meter itself never
    /// charges device traffic — metering stays purely logical, which is
    /// what keeps golden baselines device-independent.
    device: Arc<device::CountingDevice>,
    /// This meter's namespace on the (possibly shared) device: array ids
    /// restart at 0 per meter, so the namespace is what keeps two meters'
    /// arrays from colliding on one `FileDevice`.
    ns: u64,
    /// Fast path: `try_fetch` falls back to the pure-logical `try_touch`
    /// unless the device wants read-back verification (file-backed class,
    /// or armed device fault kinds).
    device_checked: AtomicBool,
    /// Fast path: skip the trace mutex entirely unless tracing is on.
    tracing: AtomicBool,
    /// Per-array read counts, populated only while tracing is on.
    trace: Mutex<Option<HashMap<u64, u64>>>,
    /// Injected faults observed so far (failed reads + detected corruption).
    faults: AtomicU64,
    /// Fast path: skip the fault-plan mutex unless a plan is armed, so the
    /// fault-free configuration charges exactly as before the fault layer
    /// existed (no meter drift).
    faults_active: AtomicBool,
    /// The fault plan consulted by [`CostModel::try_touch`].
    fault: Mutex<FaultPlan>,
    /// Fast path: skip the sink mutex entirely unless a structured trace
    /// sink is armed ([`CostModel::set_trace_sink`]) — the disabled-path
    /// cost of the whole `emsim::trace` subsystem is this one load.
    sink_active: AtomicBool,
    /// The structured trace sink, if armed. Sinks are observational only:
    /// they never affect counters, pool residency or fault decisions, so
    /// I/O totals are identical with or without one.
    sink: Mutex<Option<Arc<dyn TraceSink>>>,
}

/// A cheaply-cloneable handle to the shared I/O meter.
///
/// All structures built against the same `CostModel` charge the same
/// counters, so a composite structure (e.g. a Theorem 1 reduction wrapping a
/// hierarchy of prioritized structures) is measured end to end. The handle
/// is `Send + Sync`; see the module docs for the concurrency model.
#[derive(Clone, Debug)]
pub struct CostModel {
    inner: Arc<Inner>,
}

/// A snapshot of the meter, as returned by [`CostModel::report`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoReport {
    /// Block reads charged so far.
    pub reads: u64,
    /// Block writes charged so far.
    pub writes: u64,
    /// Buffer-pool hits (free re-reads) observed so far.
    pub pool_hits: u64,
    /// Buffer-pool misses (reads that cost an I/O) observed so far.
    pub pool_misses: u64,
    /// Injected faults observed so far: failed `try_touch` reads plus
    /// checksum mismatches detected by the storage layer. Each faulted read
    /// still counts in `reads` (the I/O was spent), so `faults` measures
    /// how much of the read traffic was wasted on failures.
    pub faults: u64,
}

impl IoReport {
    /// Total I/Os (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of pool-routed accesses that hit (free): `hits / (hits +
    /// misses)`, or `0.0` when nothing went through the pool.
    pub fn hit_rate(&self) -> f64 {
        let accesses = self.pool_hits + self.pool_misses;
        if accesses == 0 {
            0.0
        } else {
            self.pool_hits as f64 / accesses as f64
        }
    }

    /// Component-wise difference (`self` must be a later snapshot of the
    /// same meter than `earlier`).
    pub fn since(&self, earlier: &IoReport) -> IoReport {
        IoReport {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            pool_hits: self.pool_hits - earlier.pool_hits,
            pool_misses: self.pool_misses - earlier.pool_misses,
            faults: self.faults - earlier.faults,
        }
    }
}

impl std::ops::Add for IoReport {
    type Output = IoReport;
    fn add(self, rhs: IoReport) -> IoReport {
        IoReport {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            pool_hits: self.pool_hits + rhs.pool_hits,
            pool_misses: self.pool_misses + rhs.pool_misses,
            faults: self.faults + rhs.faults,
        }
    }
}

impl CostModel {
    /// Create a meter for the given machine. The fault plan is inherited
    /// from the process ambient ([`fault::ambient_plan`]): none unless a
    /// global plan was installed or `FAULT_RATE` is set.
    pub fn new(config: EmConfig) -> Self {
        CostModel::with_faults(config, fault::ambient_plan())
    }

    /// Create a meter whose fallible accessors are subject to `plan`.
    pub fn with_faults(config: EmConfig, plan: FaultPlan) -> Self {
        CostModel::with_faults_and_policy(config, plan, PoolPolicy::default())
    }

    /// Create a meter with an explicit buffer-pool policy (ambient faults).
    pub fn with_policy(config: EmConfig, policy: PoolPolicy) -> Self {
        CostModel::with_faults_and_policy(config, fault::ambient_plan(), policy)
    }

    /// Machine, fault plan, and pool policy, with the device inherited from
    /// the process ambient ([`device::ambient_device`]): a private
    /// [`crate::MemDevice`] unless `EMSIM_DEVICE=file` selected the shared
    /// file-backed store.
    pub fn with_faults_and_policy(config: EmConfig, plan: FaultPlan, policy: PoolPolicy) -> Self {
        let dev = device::ambient_device()
            .unwrap_or_else(|| Arc::new(device::MemDevice::with_plan(plan)));
        CostModel::with_device(config, plan, policy, dev)
    }

    /// The fully-general constructor: machine, fault plan, pool policy and
    /// an explicit [`BlockDevice`]. The plan is scope-filtered to the
    /// device's class ([`FaultPlan::for_class`]), so a file-scoped plan is
    /// inert on an in-memory meter and vice versa. The trace sink is
    /// inherited from the process ambient ([`trace::ambient_sink`]): none
    /// unless a global sink was installed.
    pub fn with_device(
        config: EmConfig,
        plan: FaultPlan,
        policy: PoolPolicy,
        device: Arc<dyn BlockDevice>,
    ) -> Self {
        // One counting wrapper per meter family: physical traffic from this
        // meter and every `scoped` child lands on the same ledger, feeding
        // `physical()` and the EXPLAIN physical-bytes row.
        CostModel::with_counting(config, plan, policy, Arc::new(device::CountingDevice::new(device)))
    }

    /// Shared-ledger constructor: `scoped` children re-use the parent's
    /// [`device::CountingDevice`] rather than stacking a second wrapper.
    fn with_counting(
        config: EmConfig,
        plan: FaultPlan,
        policy: PoolPolicy,
        device: Arc<device::CountingDevice>,
    ) -> Self {
        let plan = plan.for_class(device.class());
        let sink = trace::ambient_sink();
        let device_checked = device.class() == DeviceClass::File || plan.has_device_faults();
        CostModel {
            inner: Arc::new(Inner {
                config,
                policy,
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                pool: PoolImpl::new(policy, config.mem_blocks),
                next_array_id: AtomicU64::new(0),
                device,
                ns: NEXT_NS.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                device_checked: AtomicBool::new(device_checked),
                tracing: AtomicBool::new(false),
                trace: Mutex::new(None),
                faults: AtomicU64::new(0),
                faults_active: AtomicBool::new(plan.is_active()),
                fault: Mutex::new(plan),
                sink_active: AtomicBool::new(sink.is_some()),
                sink: Mutex::new(sink),
            }),
        }
    }

    /// Convenience: a meter for the RAM model.
    pub fn ram() -> Self {
        CostModel::new(EmConfig::ram())
    }

    /// The fault plan governing this meter's `try_*` accesses.
    pub fn fault_plan(&self) -> FaultPlan {
        *lock_recover(&self.inner.fault)
    }

    /// Replace the fault plan (e.g. to arm faults mid-experiment or to
    /// disarm the ambient plan with [`FaultPlan::none`]). The plan is
    /// scope-filtered to this meter's device class, exactly as at
    /// construction.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let plan = plan.for_class(self.inner.device.class());
        *lock_recover(&self.inner.fault) = plan;
        self.inner.faults_active.store(plan.is_active(), Relaxed);
        self.inner.device_checked.store(
            self.inner.device.class() == DeviceClass::File || plan.has_device_faults(),
            Relaxed,
        );
    }

    /// The physical device under this meter (the per-meter counting
    /// wrapper; pass it on so derived traffic stays on this ledger).
    pub fn device(&self) -> Arc<dyn BlockDevice> {
        self.inner.device.clone()
    }

    /// Physical traffic under this meter since construction: `pread` /
    /// `pwrite` / `sync` counts and payload bytes, from the shared
    /// [`device::DeviceLedger`]. Purely observational — nothing here feeds
    /// back into the logical meter, which is what keeps golden baselines
    /// codec- and device-independent.
    pub fn physical(&self) -> device::DeviceCounts {
        self.inner.device.counts()
    }

    /// This meter's namespace on the device (the [`BlockId::ns`] of every
    /// block its structures mirror).
    pub fn ns(&self) -> u64 {
        self.inner.ns
    }

    /// Mirror a block image to the device, best-effort: mirroring is an
    /// unmetered shadow of the logical write (golden baselines must not
    /// move), so failures surface later — through [`CostModel::try_fetch`]
    /// read-back verification — rather than here. Durable persistence goes
    /// through [`CostModel::device`] directly and handles errors.
    pub(crate) fn device_write(&self, array_id: u64, block: u64, payload: &[u8]) {
        let id = BlockId { ns: self.inner.ns, array: array_id, block };
        let _ = self.inner.device.write(id, payload);
    }

    /// Record a fault detected *above* the read path (a checksum mismatch
    /// found by [`crate::BlockArray`] / [`crate::BTree`] verification).
    pub fn record_fault(&self) {
        self.inner.faults.fetch_add(1, Relaxed);
        self.emit(TraceEvent::Fault);
    }

    /// Arm a structured trace sink: every subsequent metered event (block
    /// read, pool hit/miss, fault, retry) is attributed to the innermost
    /// open [`CostModel::span`] and forwarded to `sink`. Installing a
    /// [`trace::NoopSink`] (or any sink whose
    /// [`is_enabled`](TraceSink::is_enabled) is `false`) is equivalent to
    /// [`CostModel::clear_trace_sink`]. Sinks observe and never influence
    /// accounting, so I/O totals are identical with or without one.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) {
        if sink.is_enabled() {
            self.install_sink(Some(sink));
        } else {
            self.install_sink(None);
        }
    }

    /// Disarm the structured trace sink (back to the free no-op default).
    pub fn clear_trace_sink(&self) {
        self.install_sink(None);
    }

    /// The armed trace sink, if any.
    pub fn trace_sink(&self) -> Option<Arc<dyn TraceSink>> {
        if !self.inner.sink_active.load(Relaxed) {
            return None;
        }
        lock_recover(&self.inner.sink).clone()
    }

    fn install_sink(&self, sink: Option<Arc<dyn TraceSink>>) {
        // Order matters under concurrency: arm the flag only after the
        // sink is in place, and disarm it before removing the sink.
        match sink {
            Some(s) => {
                *lock_recover(&self.inner.sink) = Some(s);
                self.inner.sink_active.store(true, Relaxed);
            }
            None => {
                self.inner.sink_active.store(false, Relaxed);
                *lock_recover(&self.inner.sink) = None;
            }
        }
    }

    /// Forward one metered event to the sink, attributed to the innermost
    /// phase open on this thread. The disabled path is one relaxed load.
    #[inline]
    fn emit(&self, event: TraceEvent) {
        if self.inner.sink_active.load(Relaxed) {
            let sink = lock_recover(&self.inner.sink).clone();
            if let Some(sink) = sink {
                sink.event(trace::current_phase(), event);
            }
        }
    }

    /// Open a phase-labelled span: until the returned guard drops, every
    /// event this thread charges (to *any* meter) is attributed to `phase`
    /// — spans nest, and the innermost wins. With no sink armed this is
    /// free and the guard is inert. Labels should come from the
    /// [`trace::phase`] registry.
    ///
    /// ```
    /// use emsim::{CostModel, EmConfig};
    /// use emsim::trace::phase;
    ///
    /// let m = CostModel::new(EmConfig::new(64));
    /// let ((), report) = m.explain(|| {
    ///     let _g = m.span(phase::SCAN);
    ///     m.charge_reads(2);
    /// });
    /// assert_eq!(report.phase(phase::SCAN).reads, 2);
    /// ```
    pub fn span(&self, phase: &'static str) -> SpanGuard {
        if !self.inner.sink_active.load(Relaxed) {
            return SpanGuard { sink: None, phase, start: None };
        }
        let sink = lock_recover(&self.inner.sink).clone();
        let start = if let Some(s) = &sink {
            trace::push_phase(phase);
            s.span_begin(phase);
            Some(std::time::Instant::now())
        } else {
            None
        };
        SpanGuard { sink, phase, start }
    }

    /// Run `f` under a fresh [`RecordingSink`] and return its result with
    /// the EXPLAIN-style [`CostReport`] of everything it charged to this
    /// meter. The previously armed sink (if any) is restored afterwards;
    /// it does not see `f`'s events. Intended for one-query audits; see
    /// OBSERVABILITY.md for a worked walkthrough.
    pub fn explain<R>(&self, f: impl FnOnce() -> R) -> (R, CostReport) {
        let prev = self.trace_sink();
        let sink = Arc::new(RecordingSink::new());
        self.set_trace_sink(sink.clone());
        let before = self.physical();
        let out = f();
        let physical = self.physical().since(&before);
        self.install_sink(prev);
        let mut report = sink.report();
        report.physical = physical;
        (out, report)
    }

    /// The machine parameters.
    pub fn config(&self) -> EmConfig {
        self.inner.config
    }

    /// The buffer-pool policy this meter was built with.
    pub fn pool_policy(&self) -> PoolPolicy {
        self.inner.policy
    }

    /// Per-shard `(hits, misses)` of the buffer pool, in shard order — the
    /// load-balance view for [`PoolPolicy::ShardedClock`] meters. An LRU
    /// meter reports its single pool as one shard. Statistics absorbed from
    /// scoped children are excluded (they have no shard); the totals in
    /// [`CostModel::report`] include them.
    pub fn shard_stats(&self) -> Vec<(u64, u64)> {
        self.inner.pool.shard_stats()
    }

    /// Words per block (`B`).
    pub fn b(&self) -> usize {
        self.inner.config.b
    }

    /// Allocate a fresh identifier for a block-addressed structure (a
    /// [`crate::BlockArray`], a tree's node arena, …) — used as the high
    /// bits of buffer-pool keys so distinct structures never collide.
    pub fn new_array_id(&self) -> u64 {
        self.inner.next_array_id.fetch_add(1, Relaxed)
    }

    /// An isolated child meter (same machine parameters, fresh counters and
    /// buffer pool) whose totals are added to `self` when the returned
    /// [`ScopedMeter`] is dropped. The idiom for concurrent trials: each
    /// trial charges its own child without contending on the parent's pool
    /// lock, and the parent's totals end up identical to a sequential run.
    pub fn scoped(&self) -> ScopedMeter {
        // The child inherits this meter's fault plan (not the ambient
        // one), so a trial fanned out under an explicitly-armed meter
        // sees the same fault universe — its pool policy, so sharded-mode
        // trials measure sharded-mode residency — and its *device*, so
        // trials against a file-backed or counting store hit the same
        // store (the child still gets a private namespace on it).
        let child = CostModel::with_counting(
            self.inner.config,
            self.fault_plan(),
            self.inner.policy,
            self.inner.device.clone(),
        );
        // Likewise the trace sink: a fanned-out trial keeps attributing to
        // the parent's sink. (Rollup on drop absorbs raw counters without
        // re-emitting events, so the sink sees each charge exactly once.)
        child.install_sink(self.trace_sink());
        ScopedMeter {
            child,
            parent: self.clone(),
        }
    }

    /// Add a finished sub-measurement to this meter's counters. (The
    /// buffer pool is unaffected; pool statistics are folded in.)
    pub fn absorb(&self, r: IoReport) {
        self.inner.reads.fetch_add(r.reads, Relaxed);
        self.inner.writes.fetch_add(r.writes, Relaxed);
        self.inner.faults.fetch_add(r.faults, Relaxed);
        self.inner.pool.absorb_stats(r.pool_hits, r.pool_misses);
    }

    /// Charge the read of one specific block, going through the buffer pool:
    /// a pool hit is free, a miss costs one read I/O.
    ///
    /// This path models fault-free media — it never consults the fault plan
    /// and never fails. Use [`CostModel::try_touch`] for fallible reads.
    pub fn touch(&self, array_id: u64, block_idx: u64) {
        let pooled = self.inner.config.mem_blocks != 0;
        if pooled && self.inner.pool.access(array_id, block_idx) {
            self.emit(TraceEvent::PoolHit);
            return; // pool hit: free
        }
        self.inner.reads.fetch_add(1, Relaxed);
        tally_reads(1);
        self.trace_read(array_id);
        if pooled {
            self.emit(TraceEvent::PoolMiss);
        }
        self.emit(TraceEvent::Reads(1));
    }

    /// Fallible read of one specific block: disk-read `attempt` (0-based;
    /// a [`crate::fault::Retrier`] increments it) is submitted to the fault
    /// plan.
    ///
    /// * Pool hit: free and always succeeds — resident blocks are in
    ///   memory, immune to disk faults.
    /// * Miss with a successful read: one read I/O, block cached (exactly
    ///   like [`CostModel::touch`]).
    /// * Miss with an injected fault: one read I/O is still charged (the
    ///   failed attempt cost a disk round-trip — this is how retry cost
    ///   shows up in the meter), the block is *not* cached, the `faults`
    ///   counter is bumped, and the error is returned.
    ///
    /// With [`FaultPlan::none`] this is charge-for-charge identical to
    /// [`CostModel::touch`].
    pub fn try_touch(&self, array_id: u64, block_idx: u64, attempt: u32) -> Result<(), EmError> {
        if !self.inner.faults_active.load(Relaxed) {
            self.touch(array_id, block_idx);
            return Ok(());
        }
        let pooled = self.inner.config.mem_blocks != 0;
        if pooled && self.inner.pool.probe(array_id, block_idx) {
            self.emit(TraceEvent::PoolHit);
            return Ok(());
        }
        let outcome = self
            .fault_plan()
            .read_outcome(array_id, block_idx, attempt);
        // The disk attempt happened either way: charge the read.
        self.inner.reads.fetch_add(1, Relaxed);
        tally_reads(1);
        self.emit(TraceEvent::Reads(1));
        if attempt > 0 {
            self.emit(TraceEvent::Retry);
        }
        if pooled {
            match outcome {
                Ok(()) => self.inner.pool.admit(array_id, block_idx),
                Err(_) => self.inner.pool.record_miss(array_id, block_idx),
            }
            self.emit(TraceEvent::PoolMiss);
        }
        match outcome {
            Ok(()) => {
                self.trace_read(array_id);
                Ok(())
            }
            Err(e) => {
                self.inner.faults.fetch_add(1, Relaxed);
                self.emit(TraceEvent::Fault);
                Err(e)
            }
        }
    }

    /// [`CostModel::try_touch`] plus physical read-back: on a charged miss
    /// the mirrored block image is fetched from the device and its CRC
    /// verified, so torn writes and short reads injected *below* the meter
    /// surface here as [`EmError`]s on the logical address.
    ///
    /// * On the default in-memory device with no device faults armed this
    ///   is exactly [`CostModel::try_touch`] — same charges, same
    ///   outcomes, zero meter drift (the golden-baseline invariant).
    /// * Pool hits remain free and immune: resident blocks are in memory.
    /// * On a charged miss, exactly one physical `read` is issued — the
    ///   1:1 correspondence E23's simulator-validation table counts.
    /// * A block the structure never mirrored reads back as absent, which
    ///   verifies vacuously (header mirroring is best-effort).
    pub fn try_fetch(&self, array_id: u64, block_idx: u64, attempt: u32) -> Result<(), EmError> {
        if !self.inner.device_checked.load(Relaxed) {
            return self.try_touch(array_id, block_idx, attempt);
        }
        let pooled = self.inner.config.mem_blocks != 0;
        if pooled && self.inner.pool.probe(array_id, block_idx) {
            self.emit(TraceEvent::PoolHit);
            return Ok(());
        }
        let outcome = if self.inner.faults_active.load(Relaxed) {
            self.fault_plan().read_outcome(array_id, block_idx, attempt)
        } else {
            Ok(())
        };
        // The disk attempt happened either way: charge the read.
        self.inner.reads.fetch_add(1, Relaxed);
        tally_reads(1);
        self.emit(TraceEvent::Reads(1));
        if attempt > 0 {
            self.emit(TraceEvent::Retry);
        }
        let outcome = outcome.and_then(|()| self.device_verify(array_id, block_idx));
        if pooled {
            match outcome {
                Ok(()) => self.inner.pool.admit(array_id, block_idx),
                Err(_) => self.inner.pool.record_miss(array_id, block_idx),
            }
            self.emit(TraceEvent::PoolMiss);
        }
        match outcome {
            Ok(()) => {
                self.trace_read(array_id);
                Ok(())
            }
            Err(e) => {
                self.inner.faults.fetch_add(1, Relaxed);
                self.emit(TraceEvent::Fault);
                Err(e)
            }
        }
    }

    /// One physical read of the mirrored image, with device failures mapped
    /// onto the logical `(array_id, block)` address (the device reports its
    /// own [`BlockId`] coordinates, which callers upstream don't know).
    fn device_verify(&self, array_id: u64, block: u64) -> Result<(), EmError> {
        let id = BlockId { ns: self.inner.ns, array: array_id, block };
        match self.inner.device.read(id) {
            Ok(_) => Ok(()),
            Err(EmError::Transient { .. }) => Err(EmError::Transient { array_id, block }),
            Err(EmError::Corrupt { .. }) => Err(EmError::Corrupt { array_id, block }),
            Err(e) => Err(e),
        }
    }

    /// Attribute one charged read to `array_id` if tracing is on.
    fn trace_read(&self, array_id: u64) {
        if self.inner.tracing.load(Relaxed) {
            if let Some(trace) = lock_recover(&self.inner.trace).as_mut() {
                *trace.entry(array_id).or_insert(0) += 1;
            }
        }
    }

    /// Start recording per-structure read counts (keyed by the array id each
    /// structure drew from [`CostModel::new_array_id`]). Resets any previous
    /// trace. Only `touch`-based reads are attributed; bulk `charge_*` calls
    /// have no structure identity.
    pub fn start_trace(&self) {
        *lock_recover(&self.inner.trace) = Some(HashMap::new());
        self.inner.tracing.store(true, Relaxed);
    }

    /// Stop tracing and return `(array_id, reads)` pairs, heaviest first.
    pub fn stop_trace(&self) -> Vec<(u64, u64)> {
        self.inner.tracing.store(false, Relaxed);
        let map = lock_recover(&self.inner.trace).take().unwrap_or_default();
        let mut v: Vec<(u64, u64)> = map.into_iter().collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v
    }

    /// Charge `n` read I/Os unconditionally (for sequential scans, whose
    /// blocks would evict each other anyway).
    pub fn charge_reads(&self, n: u64) {
        self.inner.reads.fetch_add(n, Relaxed);
        tally_reads(n);
        if n > 0 {
            self.emit(TraceEvent::Reads(n));
        }
    }

    /// Charge `n` write I/Os.
    pub fn charge_writes(&self, n: u64) {
        self.inner.writes.fetch_add(n, Relaxed);
        tally_writes(n);
        if n > 0 {
            self.emit(TraceEvent::Writes(n));
        }
    }

    /// Charge the cost of sequentially scanning `items` items of type `T`:
    /// `⌈items / (B/words(T))⌉` reads.
    pub fn charge_scan<T>(&self, items: usize) {
        if items == 0 {
            return;
        }
        let per = self.inner.config.items_per_block::<T>();
        self.charge_reads(items.div_ceil(per) as u64);
    }

    /// Read the counters.
    pub fn report(&self) -> IoReport {
        let (pool_hits, pool_misses) = self.inner.pool.stats();
        IoReport {
            reads: self.inner.reads.load(Relaxed),
            writes: self.inner.writes.load(Relaxed),
            pool_hits,
            pool_misses,
            faults: self.inner.faults.load(Relaxed),
        }
    }

    /// Buffer-pool hit rate over everything charged so far (see
    /// [`IoReport::hit_rate`]).
    pub fn hit_rate(&self) -> f64 {
        self.report().hit_rate()
    }

    /// Zero the counters, including pool hit/miss statistics (the buffer
    /// pool *contents* are kept; use [`CostModel::clear_pool`] for a
    /// cold-cache measurement).
    pub fn reset(&self) {
        self.inner.reads.store(0, Relaxed);
        self.inner.writes.store(0, Relaxed);
        self.inner.faults.store(0, Relaxed);
        self.inner.pool.reset_stats();
    }

    /// Empty the buffer pool, so the next measurement starts cold. Hit/miss
    /// statistics are kept; [`CostModel::reset`] zeroes those.
    pub fn clear_pool(&self) {
        self.inner.pool.clear();
    }

    /// Run `f` and return its result together with the I/Os it charged.
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, IoReport) {
        let before = self.report();
        let out = f();
        let after = self.report();
        (out, after.since(&before))
    }
}

/// An isolated child meter that rolls its totals up into the parent on
/// drop — see [`CostModel::scoped`]. Dereferences to the child
/// [`CostModel`], so it can be handed to anything expecting a meter.
#[derive(Debug)]
pub struct ScopedMeter {
    child: CostModel,
    parent: CostModel,
}

impl ScopedMeter {
    /// The child meter itself (also available via deref).
    pub fn meter(&self) -> &CostModel {
        &self.child
    }
}

impl std::ops::Deref for ScopedMeter {
    type Target = CostModel;
    fn deref(&self) -> &CostModel {
        &self.child
    }
}

impl Drop for ScopedMeter {
    fn drop(&mut self) {
        // The child's charges were already tallied on whatever thread made
        // them, so absorb only the meter counters (no thread re-tally).
        self.parent.absorb(self.child.report());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_per_block_rounds_down_but_is_positive() {
        let c = EmConfig::new(64);
        assert_eq!(c.items_per_block::<u64>(), 64);
        assert_eq!(c.items_per_block::<[u64; 4]>(), 16);
        // An item larger than a block still "fits" one per block.
        assert_eq!(c.items_per_block::<[u64; 100]>(), 1);
        // Sub-word items round up to one word.
        assert_eq!(c.items_per_block::<u8>(), 64);
    }

    #[test]
    fn charge_scan_matches_ceiling() {
        let m = CostModel::new(EmConfig::new(64));
        m.charge_scan::<u64>(0);
        assert_eq!(m.report().reads, 0);
        m.charge_scan::<u64>(1);
        assert_eq!(m.report().reads, 1);
        m.reset();
        m.charge_scan::<u64>(64);
        assert_eq!(m.report().reads, 1);
        m.reset();
        m.charge_scan::<u64>(65);
        assert_eq!(m.report().reads, 2);
    }

    #[test]
    fn pool_hits_are_free() {
        let m = CostModel::new(EmConfig::with_memory(64, 2));
        m.touch(0, 0);
        m.touch(0, 0);
        m.touch(0, 0);
        assert_eq!(m.report().reads, 1);
        m.touch(0, 1);
        m.touch(0, 2); // evicts block 0
        m.touch(0, 0); // miss again
        assert_eq!(m.report().reads, 4);
    }

    #[test]
    fn no_pool_means_every_touch_pays() {
        let m = CostModel::new(EmConfig::new(64));
        m.touch(0, 0);
        m.touch(0, 0);
        assert_eq!(m.report().reads, 2);
    }

    #[test]
    fn measure_is_differential() {
        let m = CostModel::ram();
        m.charge_reads(5);
        let ((), d) = m.measure(|| m.charge_reads(3));
        assert_eq!(d.reads, 3);
        assert_eq!(m.report().reads, 8);
    }

    #[test]
    fn ram_model_has_unit_blocks() {
        assert_eq!(EmConfig::ram().items_per_block::<u64>(), 1);
    }

    #[test]
    fn trace_attributes_touches_per_array() {
        let m = CostModel::new(EmConfig::new(64));
        let a = m.new_array_id();
        let b = m.new_array_id();
        m.start_trace();
        m.touch(a, 0);
        m.touch(a, 1);
        m.touch(b, 0);
        m.charge_reads(10); // untraced bulk charge
        let t = m.stop_trace();
        assert_eq!(t, vec![(a, 2), (b, 1)]);
        // Trace off: nothing recorded, nothing returned.
        m.touch(a, 2);
        assert!(m.stop_trace().is_empty());
    }

    #[test]
    fn trace_skips_pool_hits() {
        let m = CostModel::new(EmConfig::with_memory(64, 4));
        let a = m.new_array_id();
        m.start_trace();
        m.touch(a, 0);
        m.touch(a, 0); // hit — free, untraced
        assert_eq!(m.stop_trace(), vec![(a, 1)]);
    }

    #[test]
    fn hit_rate_tracks_pool_effectiveness() {
        let m = CostModel::new(EmConfig::with_memory(64, 4));
        assert_eq!(m.hit_rate(), 0.0);
        m.touch(0, 0); // miss
        m.touch(0, 0); // hit
        m.touch(0, 0); // hit
        m.touch(0, 1); // miss
        let r = m.report();
        assert_eq!(r.pool_hits, 2);
        assert_eq!(r.pool_misses, 2);
        assert_eq!(r.hit_rate(), 0.5);
        m.reset();
        assert_eq!(m.report().pool_hits, 0);
        // Charges that bypass the pool never count as accesses.
        let m2 = CostModel::new(EmConfig::new(64));
        m2.touch(0, 0);
        m2.charge_reads(5);
        assert_eq!(m2.hit_rate(), 0.0);
    }

    #[test]
    fn scoped_meter_rolls_up_on_drop() {
        let parent = CostModel::new(EmConfig::with_memory(64, 4));
        parent.charge_reads(2);
        {
            let trial = parent.scoped();
            trial.touch(0, 0); // child miss
            trial.touch(0, 0); // child hit
            trial.charge_writes(3);
            // Parent unchanged until the scope ends.
            assert_eq!(parent.report().reads, 2);
            assert_eq!(parent.report().writes, 0);
        }
        let r = parent.report();
        assert_eq!(r.reads, 3);
        assert_eq!(r.writes, 3);
        assert_eq!(r.pool_hits, 1);
        assert_eq!(r.pool_misses, 1);
    }

    #[test]
    fn scoped_meters_have_isolated_pools() {
        let parent = CostModel::new(EmConfig::with_memory(64, 2));
        parent.touch(7, 0); // resident in the parent pool
        let trial = parent.scoped();
        trial.touch(7, 0); // cold in the child pool: a miss, one read
        assert_eq!(trial.meter().report().reads, 1);
    }

    #[test]
    fn thread_tally_accumulates_charges() {
        let before = thread_charged();
        let m = CostModel::new(EmConfig::new(64));
        m.charge_reads(4);
        m.charge_writes(2);
        m.touch(0, 0);
        let d = thread_charged().since(&before);
        assert_eq!(d.reads, 5);
        assert_eq!(d.writes, 2);
        credit_thread(IoReport {
            reads: 10,
            ..IoReport::default()
        });
        assert_eq!(thread_charged().since(&before).reads, 15);
    }

    #[test]
    fn try_touch_with_inert_plan_charges_like_touch() {
        // Explicit none-plan meters, immune to any ambient/global plan a
        // concurrently-running test may have installed.
        let a = CostModel::with_faults(EmConfig::with_memory(64, 2), FaultPlan::none());
        let b = CostModel::with_faults(EmConfig::with_memory(64, 2), FaultPlan::none());
        for blk in [0u64, 0, 1, 2, 0, 1] {
            a.touch(0, blk);
            b.try_touch(0, blk, 0).expect("inert plan never fails");
        }
        assert_eq!(a.report(), b.report(), "no meter drift from the fallible path");
        assert_eq!(a.report().faults, 0);
    }

    #[test]
    fn failed_reads_are_charged_counted_and_never_cached() {
        // Every block is permanently bad: each attempt costs one read,
        // bumps `faults`, counts a pool miss, and caches nothing.
        let plan = FaultPlan::new(5).with_permanent(1.0);
        let m = CostModel::with_faults(EmConfig::with_memory(64, 4), plan);
        for attempt in 0..3 {
            assert!(m.try_touch(0, 7, attempt).is_err());
        }
        let r = m.report();
        assert_eq!(r.reads, 3, "each failed attempt is a real disk read");
        assert_eq!(r.faults, 3);
        assert_eq!(r.pool_misses, 3);
        assert_eq!(r.pool_hits, 0, "failed reads never cache the block");
        assert_eq!(r.hit_rate(), 0.0);
    }

    #[test]
    fn resident_blocks_are_immune_to_faults() {
        // Load the block under an inert plan, then arm total failure: the
        // pool hit must still succeed for free.
        let m = CostModel::with_faults(EmConfig::with_memory(64, 4), FaultPlan::none());
        m.touch(3, 0);
        m.set_fault_plan(FaultPlan::new(5).with_permanent(1.0));
        assert!(m.try_touch(3, 0, 0).is_ok());
        let r = m.report();
        assert_eq!(r.reads, 1, "the hit was free");
        assert_eq!(r.pool_hits, 1);
        assert_eq!(r.faults, 0);
    }

    #[test]
    fn record_fault_feeds_the_fault_counter() {
        let m = CostModel::with_faults(EmConfig::new(64), FaultPlan::none());
        m.record_fault();
        m.record_fault();
        assert_eq!(m.report().faults, 2);
        m.reset();
        assert_eq!(m.report().faults, 0, "reset zeroes faults");
    }

    #[test]
    fn scoped_meter_rolls_up_faults_and_retried_reads() {
        // Satellite: retried reads must count as distinct I/Os in BOTH the
        // child and the parent meter, and fault counts must roll up too.
        let plan = FaultPlan::new(1).with_transient(1.0); // every attempt fails
        let parent = CostModel::with_faults(EmConfig::with_memory(64, 4), plan);
        {
            let trial = parent.scoped();
            assert!(
                trial.fault_plan().is_active(),
                "child inherits the parent's plan"
            );
            // A fail-fast sequence of 4 attempts (what Retrier::new(3) does).
            for attempt in 0..4 {
                assert!(trial.try_touch(0, 0, attempt).is_err());
            }
            let c = trial.meter().report();
            assert_eq!(c.reads, 4, "child: one I/O per attempt");
            assert_eq!(c.faults, 4);
            assert_eq!(parent.report().reads, 0, "parent untouched until drop");
        }
        let p = parent.report();
        assert_eq!(p.reads, 4, "parent: retried reads preserved on rollup");
        assert_eq!(p.faults, 4);
        assert_eq!(p.pool_misses, 4);
        assert_eq!(p.hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_reflects_fault_wasted_misses() {
        // One good block re-read twice (1 miss + 2 hits), plus 2 failed
        // attempts on a bad block (2 misses): hit_rate = 2/5.
        let plan = FaultPlan::new(5).with_permanent(1.0);
        let m = CostModel::with_faults(EmConfig::with_memory(64, 4), FaultPlan::none());
        m.touch(0, 0);
        m.touch(0, 0);
        m.touch(0, 0);
        m.set_fault_plan(plan);
        assert!(m.try_touch(0, 9, 0).is_err());
        assert!(m.try_touch(0, 9, 1).is_err());
        let r = m.report();
        assert_eq!((r.pool_hits, r.pool_misses), (2, 3));
        assert!((r.hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn meter_survives_a_panicking_worker_thread() {
        // A thread that dies while holding the meter's internal locks must
        // not poison them for every other experiment sharing the meter
        // (the poisoned-lock cascade this PR fixes).
        let m = CostModel::new(EmConfig::with_memory(64, 4));
        m.start_trace();
        for mutex in ["pool", "trace", "fault"] {
            let m2 = m.clone();
            let joined = std::thread::spawn(move || {
                let _pool;
                let _trace;
                let _fault;
                match mutex {
                    // lock_recover (not lock().unwrap()) here too: a helper
                    // that unwraps would itself panic on a lock poisoned by
                    // an *earlier* iteration, defeating what this verifies.
                    "pool" => {
                        _pool = match &m2.inner.pool {
                            PoolImpl::Lru(p) => lock_recover(p),
                            PoolImpl::Sharded(_) => unreachable!("default policy is LRU"),
                        }
                    }
                    "trace" => _trace = lock_recover(&m2.inner.trace),
                    _ => _fault = lock_recover(&m2.inner.fault),
                }
                panic!("worker dies holding the {mutex} lock");
            })
            .join();
            assert!(joined.is_err());
        }
        m.touch(0, 1); // poisoned pool + trace locks must be recovered
        assert_eq!(m.stop_trace(), vec![(0, 1)]);
        let _ = m.fault_plan();
        m.set_fault_plan(FaultPlan::none());
        m.absorb(IoReport::default());
        m.reset();
        m.clear_pool();
        assert_eq!(m.report().reads, 0);
    }

    #[test]
    fn sharded_policy_pools_hits_and_reports_per_shard() {
        let m = CostModel::with_policy(
            EmConfig::with_memory(64, 8),
            PoolPolicy::ShardedClock { shards: 4 },
        );
        assert_eq!(m.pool_policy(), PoolPolicy::ShardedClock { shards: 4 });
        m.touch(0, 0);
        m.touch(0, 0); // resident: free
        let r = m.report();
        assert_eq!(r.reads, 1);
        assert_eq!((r.pool_hits, r.pool_misses), (1, 1));
        let per = m.shard_stats();
        assert_eq!(per.len(), 4);
        assert_eq!(per.iter().map(|s| s.0 + s.1).sum::<u64>(), 2);
        m.clear_pool();
        m.touch(0, 0); // cold again
        assert_eq!(m.report().reads, 2);
    }

    #[test]
    fn lru_meter_reports_one_shard() {
        let m = CostModel::new(EmConfig::with_memory(64, 4));
        assert_eq!(m.pool_policy(), PoolPolicy::Lru);
        m.touch(0, 0);
        m.touch(0, 0);
        assert_eq!(m.shard_stats(), vec![(1, 1)]);
    }

    #[test]
    fn scoped_child_inherits_pool_policy_and_rolls_up() {
        let parent =
            CostModel::with_policy(EmConfig::with_memory(64, 8), PoolPolicy::sharded_default());
        {
            let trial = parent.scoped();
            assert_eq!(trial.pool_policy(), PoolPolicy::sharded_default());
            trial.touch(0, 0);
            trial.touch(0, 0);
        }
        let r = parent.report();
        assert_eq!(r.reads, 1);
        assert_eq!((r.pool_hits, r.pool_misses), (1, 1));
        // Rolled-up stats are absorbed, not attributed to any parent shard.
        assert_eq!(parent.shard_stats().iter().map(|s| s.0 + s.1).sum::<u64>(), 0);
    }

    #[test]
    fn cost_model_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CostModel>();
        assert_send_sync::<IoReport>();
        assert_send_sync::<ScopedMeter>();
    }
}
