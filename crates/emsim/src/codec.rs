//! Block payload compression, strictly *below* the logical meter and
//! *above* the device.
//!
//! The paper's bounds are stated in logical blocks of capacity `B`, but on
//! the real [`FileDevice`](crate::FileDevice) the quantity that costs money
//! is physical bytes. This module closes that gap with a [`BlockCodec`]
//! applied to the item payload of every persistent block image written by
//! [`crate::BlockArray`] (headers stay raw so images remain
//! self-describing):
//!
//! * [`Raw`] — identity, today's byte format, still the default.
//! * [`VByte`] — each 64-bit payload word as a LEB128 varint (7 data bits
//!   per byte, high bit = continuation): small values shrink to 1–2 bytes.
//! * [`DeltaVByte`] — zigzag-coded word-to-word deltas, then varints.
//!   `BlockArray` / `BTree` payloads are sorted runs, so deltas are small
//!   positive gaps and most words collapse to a single byte — the scheme of
//!   perlin-core's `compressor/` vbyte utilities.
//!
//! Two invariants make the layer safe to slide under everything above it:
//!
//! 1. **Metering is purely logical.** Charges (`charge_read`,
//!    `charge_scan`) count logical blocks, never encoded bytes, so golden
//!    I/O baselines are bit-identical under every codec — CI re-runs the
//!    comparison with `EMSIM_CODEC=vbyte` and `=delta` to enforce it. The
//!    savings show up only on the physical ledger
//!    ([`CostModel::physical`](crate::CostModel::physical)).
//! 2. **Images are self-describing.** The codec tag is stamped into the
//!    block-image header at write time and consulted at open time, so a
//!    store written under one `EMSIM_CODEC` reads correctly under any
//!    other, and the torn-write CRC (computed by the device over the
//!    *encoded* image) covers compressed payloads exactly as it covers raw
//!    ones.
//!
//! Selection mirrors the `EMSIM_DEVICE` pattern: `EMSIM_CODEC=raw|vbyte|
//! delta` picks the process-ambient codec ([`ambient_codec`], read once);
//! tests and experiments compare codecs in-process with [`with_codec`].
//! The decode hot loop dispatches through
//! [`kernels::vbyte_decode`](crate::kernels::vbyte_decode)
//! (scalar / unrolled / AVX2, byte-identical across backends).

use std::cell::Cell;
use std::sync::OnceLock;

use crate::kernels;

/// A reversible transform of one block payload image. Implementations must
/// be byte-exact: `decode(encode(raw)) == raw` for every input, sorted or
/// not — sortedness only affects the compression *ratio*, never
/// correctness.
pub trait BlockCodec: Send + Sync {
    /// Stable lowercase name (matches the `EMSIM_CODEC` values).
    fn name(&self) -> &'static str;

    /// The wire tag stamped into block-image headers (see
    /// [`codec_by_tag`]). Stable across releases: persisted stores carry it.
    fn tag(&self) -> u8;

    /// Encode one payload image.
    fn encode(&self, raw: &[u8]) -> Vec<u8>;

    /// Decode one payload image; `None` when `encoded` is not a valid
    /// encoding (truncated, overflowing varints, trailing garbage, a
    /// length header that disagrees with the stream).
    fn decode(&self, encoded: &[u8]) -> Option<Vec<u8>>;
}

/// The identity codec: encoded image == raw image, byte for byte.
#[derive(Clone, Copy, Debug, Default)]
pub struct Raw;

/// LEB128 varints over the payload's little-endian 64-bit words.
#[derive(Clone, Copy, Debug, Default)]
pub struct VByte;

/// Zigzag word-to-word deltas, then LEB128 varints — the sorted-run codec.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeltaVByte;

/// The process-wide codec instances [`ambient_codec`] / [`codec_by_tag`]
/// hand out.
pub static RAW: Raw = Raw;
#[allow(missing_docs)]
pub static VBYTE: VByte = VByte;
#[allow(missing_docs)]
pub static DELTA_VBYTE: DeltaVByte = DeltaVByte;

impl BlockCodec for Raw {
    fn name(&self) -> &'static str {
        "raw"
    }

    fn tag(&self) -> u8 {
        0
    }

    fn encode(&self, raw: &[u8]) -> Vec<u8> {
        raw.to_vec()
    }

    fn decode(&self, encoded: &[u8]) -> Option<Vec<u8>> {
        Some(encoded.to_vec())
    }
}

impl BlockCodec for VByte {
    fn name(&self) -> &'static str {
        "vbyte"
    }

    fn tag(&self) -> u8 {
        1
    }

    fn encode(&self, raw: &[u8]) -> Vec<u8> {
        encode_words(raw, |word, _prev| word)
    }

    fn decode(&self, encoded: &[u8]) -> Option<Vec<u8>> {
        decode_words(encoded, |word, _prev| word)
    }
}

impl BlockCodec for DeltaVByte {
    fn name(&self) -> &'static str {
        "delta"
    }

    fn tag(&self) -> u8 {
        2
    }

    fn encode(&self, raw: &[u8]) -> Vec<u8> {
        // Delta from an implicit 0 predecessor, zigzag-folded so the first
        // (absolute) word and any out-of-order gap still fit: wrapping
        // arithmetic keeps the transform a bijection on arbitrary bytes.
        encode_words(raw, |word, prev| zigzag(word.wrapping_sub(prev) as i64))
    }

    fn decode(&self, encoded: &[u8]) -> Option<Vec<u8>> {
        decode_words(encoded, |folded, prev| {
            prev.wrapping_add(unzigzag(folded) as u64)
        })
    }
}

/// Zigzag fold: small-magnitude signed deltas → small unsigned varints
/// (`0 → 0, -1 → 1, 1 → 2, -2 → 3, …`).
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Append `v` to `out` as a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Shared word-stream container for the non-raw codecs:
///
/// ```text
/// [varint raw_len] [varint per 64-bit word, transformed] [tail bytes raw]
/// ```
///
/// where the payload's first `raw_len / 8 * 8` bytes are little-endian
/// words and `tail` is the `raw_len % 8` leftover (item sizes of 4 bytes
/// can leave a half word). `fold(word, prev)` maps each word given its
/// predecessor (identity for [`VByte`], zigzag delta for [`DeltaVByte`]).
fn encode_words(raw: &[u8], fold: impl Fn(u64, u64) -> u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 4 + 10);
    put_varint(&mut out, raw.len() as u64);
    let words = raw.chunks_exact(8);
    let tail = words.remainder();
    let mut prev = 0u64;
    for w in words {
        let word = u64::from_le_bytes(w.try_into().unwrap());
        put_varint(&mut out, fold(word, prev));
        prev = word;
    }
    out.extend_from_slice(tail);
    out
}

/// Inverse of [`encode_words`]: `unfold(folded, prev)` reconstructs each
/// word from its transformed form and the previous *reconstructed* word.
/// The varint hot loop runs through the dispatched
/// [`kernels::vbyte_decode`] backends.
fn decode_words(encoded: &[u8], unfold: impl Fn(u64, u64) -> u64) -> Option<Vec<u8>> {
    let (len_word, mut pos) = kernels::vbyte_decode(encoded, 1)?;
    if len_word[0] > MAX_PAYLOAD_LEN {
        return None;
    }
    let raw_len = usize::try_from(len_word[0]).ok()?;
    let n_words = raw_len / 8;
    let (folded, consumed) = kernels::vbyte_decode(&encoded[pos..], n_words)?;
    pos += consumed;
    let tail = &encoded[pos..];
    if tail.len() != raw_len % 8 {
        return None; // truncated stream or trailing garbage
    }
    let mut raw = Vec::with_capacity(raw_len);
    let mut prev = 0u64;
    for f in folded {
        let word = unfold(f, prev);
        raw.extend_from_slice(&word.to_le_bytes());
        prev = word;
    }
    raw.extend_from_slice(tail);
    Some(raw)
}

/// Upper bound a decoder will believe for a declared payload length — a
/// corrupted length varint must not turn into a giant allocation before
/// the CRC / checksum layers get to reject the block.
const MAX_PAYLOAD_LEN: u64 = 1 << 32;

/// The codec registered under wire `tag`, or `None` for tags no release
/// has ever written (a corrupt or future-format header byte).
pub fn codec_by_tag(tag: u8) -> Option<&'static dyn BlockCodec> {
    match tag {
        0 => Some(&RAW),
        1 => Some(&VBYTE),
        2 => Some(&DELTA_VBYTE),
        _ => None,
    }
}

static AMBIENT: OnceLock<&'static dyn BlockCodec> = OnceLock::new();

thread_local! {
    /// Per-thread override installed by [`with_codec`] (tests / E24).
    static OVERRIDE: Cell<Option<&'static dyn BlockCodec>> = const { Cell::new(None) };
}

/// The process-ambient codec: `EMSIM_CODEC=raw|vbyte|delta`, default
/// [`Raw`]. Read once per process, like `EMSIM_DEVICE` / `EMSIM_KERNELS`.
///
/// # Panics
/// On an unrecognized `EMSIM_CODEC` value — a typo silently falling back
/// to `raw` would un-compress a store the operator believes is compressed.
pub fn ambient_codec() -> &'static dyn BlockCodec {
    *AMBIENT.get_or_init(|| match std::env::var("EMSIM_CODEC").as_deref() {
        Err(_) | Ok("raw") => &RAW,
        Ok("vbyte") => &VBYTE,
        Ok("delta") => &DELTA_VBYTE,
        Ok(other) => panic!("EMSIM_CODEC={other:?}: expected raw|vbyte|delta"),
    })
}

/// The codec writes on this thread use right now: the [`with_codec`]
/// override if one is installed, else the process ambient. Only the
/// *write* path consults this — reads always follow the header tag.
pub fn active_codec() -> &'static dyn BlockCodec {
    OVERRIDE.with(Cell::get).unwrap_or_else(ambient_codec)
}

/// Run `f` with the write-path codec forced to `codec` on this thread —
/// how E24 and the property tests compare codecs in one process. Restores
/// the previous override even if `f` panics.
pub fn with_codec<R>(codec: &'static dyn BlockCodec, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<&'static dyn BlockCodec>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(codec))));
    f()
}

/// Every registered codec, in tag order — the iteration surface for the
/// property suites and E24.
pub fn all_codecs() -> [&'static dyn BlockCodec; 3] {
    [&RAW, &VBYTE, &DELTA_VBYTE]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_run(n: u64, gap: u64) -> Vec<u8> {
        let mut raw = Vec::new();
        for i in 0..n {
            raw.extend_from_slice(&(1000 + i * gap).to_le_bytes());
        }
        raw
    }

    #[test]
    fn roundtrip_on_word_payloads_and_tails() {
        let mut cases = vec![
            Vec::new(),
            vec![7u8],                    // pure tail, no words
            sorted_run(1, 3),
            sorted_run(100, 5),
            u64::MAX.to_le_bytes().to_vec(),
        ];
        let mut with_tail = sorted_run(9, 17);
        with_tail.extend_from_slice(&[1, 2, 3]); // u32-item stores leave tails
        cases.push(with_tail);
        for raw in &cases {
            for codec in all_codecs() {
                let enc = codec.encode(raw);
                assert_eq!(
                    codec.decode(&enc).as_ref(),
                    Some(raw),
                    "{} on {} bytes",
                    codec.name(),
                    raw.len()
                );
            }
        }
    }

    #[test]
    fn delta_vbyte_compresses_sorted_runs() {
        let raw = sorted_run(512, 3);
        let enc = DELTA_VBYTE.encode(&raw);
        // Gap 3 zigzags to 6: one byte per word after the first.
        assert!(
            enc.len() * 4 < raw.len(),
            "expected ≥4× on a dense sorted run, got {} → {}",
            raw.len(),
            enc.len()
        );
        assert!(VBYTE.encode(&raw).len() < raw.len());
        assert_eq!(RAW.encode(&raw), raw);
    }

    #[test]
    fn decoders_reject_malformed_streams() {
        let raw = sorted_run(32, 1);
        for codec in [&VBYTE as &'static dyn BlockCodec, &DELTA_VBYTE] {
            let enc = codec.encode(&raw);
            assert_eq!(codec.decode(&enc[..enc.len() - 1]), None, "truncated");
            let mut garbage = enc.clone();
            garbage.push(0x00);
            assert_eq!(codec.decode(&garbage), None, "trailing garbage");
            assert_eq!(codec.decode(&[0xFF; 12]), None, "overflowing length");
        }
    }

    #[test]
    fn tags_roundtrip_through_the_registry() {
        for codec in all_codecs() {
            let back = codec_by_tag(codec.tag()).expect("registered");
            assert_eq!(back.name(), codec.name());
        }
        assert!(codec_by_tag(3).is_none());
        assert!(codec_by_tag(0xFF).is_none());
    }

    #[test]
    fn with_codec_overrides_and_restores_on_panic() {
        let before = active_codec().name();
        let r = std::panic::catch_unwind(|| {
            with_codec(&DELTA_VBYTE, || {
                assert_eq!(active_codec().name(), "delta");
                panic!("boom");
            });
        });
        assert!(r.is_err());
        assert_eq!(active_codec().name(), before, "override restored after panic");
    }

    #[test]
    fn zigzag_is_a_bijection_on_extremes() {
        for d in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
