//! External merge sort.
//!
//! Classic Aggarwal–Vitter sorting: form runs of `M` items in memory, then
//! merge `M/B`-way until one run remains, charging `O((n/B)·log_{M/B}(n/B))`
//! I/Os. Build-time code throughout the workspace uses this to account for
//! preprocessing passes honestly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cost::CostModel;

/// Sort `items` ascending by `key`, charging external-merge-sort I/Os.
///
/// The in-memory capacity is taken as `mem_blocks · items_per_block`, with a
/// floor of `4` blocks so the simulation still works for cache-less configs.
pub fn external_sort_by<T, K: Ord>(
    model: &CostModel,
    items: &mut Vec<T>,
    key: impl Fn(&T) -> K,
) {
    let per_block = model.config().items_per_block::<T>();
    let mem_blocks = model.config().mem_blocks.max(4);
    let run_len = (mem_blocks * per_block).max(1);
    let fan_in = mem_blocks.saturating_sub(1).max(2);

    let n = items.len();
    if n <= 1 {
        return;
    }

    // Run formation: one read + one write pass.
    model.charge_scan::<T>(n);
    model.charge_writes(n.div_ceil(per_block) as u64);
    let mut runs: Vec<Vec<T>> = Vec::new();
    {
        let mut rest = std::mem::take(items);
        while !rest.is_empty() {
            let tail = rest.split_off(rest.len().min(run_len));
            let mut run = rest;
            run.sort_by_key(|a| key(a));
            runs.push(run);
            rest = tail;
        }
    }

    // Multiway merge passes.
    while runs.len() > 1 {
        let mut next: Vec<Vec<T>> = Vec::new();
        for group in runs.chunks_mut(fan_in) {
            let total: usize = group.iter().map(Vec::len).sum();
            model.charge_scan::<T>(total);
            model.charge_writes(total.div_ceil(per_block) as u64);
            let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::new();
            let mut iters: Vec<std::vec::IntoIter<T>> =
                group.iter_mut().map(|r| std::mem::take(r).into_iter()).collect();
            let mut heads: Vec<Option<T>> = Vec::with_capacity(iters.len());
            for (i, it) in iters.iter_mut().enumerate() {
                let head = it.next();
                if let Some(h) = &head {
                    heap.push(Reverse((key(h), i)));
                }
                heads.push(head);
            }
            let mut merged = Vec::with_capacity(total);
            while let Some(Reverse((_, i))) = heap.pop() {
                let item = heads[i].take().expect("head present");
                merged.push(item);
                if let Some(nxt) = iters[i].next() {
                    heap.push(Reverse((key(&nxt), i)));
                    heads[i] = Some(nxt);
                }
            }
            next.push(merged);
        }
        runs = next;
    }
    *items = runs.pop().unwrap_or_default();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, EmConfig};

    #[test]
    fn sorts_correctly() {
        let m = CostModel::new(EmConfig::with_memory(64, 8));
        let mut v: Vec<u64> = (0..10_000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        external_sort_by(&m, &mut v, |&x| x);
        assert_eq!(v, expected);
    }

    #[test]
    fn stable_under_custom_key() {
        let m = CostModel::new(EmConfig::with_memory(64, 8));
        let mut v: Vec<(u64, u64)> = (0..1000).map(|i| (1000 - i, i)).collect();
        external_sort_by(&m, &mut v, |&(a, _)| a);
        assert!(v.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn empty_and_single() {
        let m = CostModel::ram();
        let mut v: Vec<u64> = vec![];
        external_sort_by(&m, &mut v, |&x| x);
        assert!(v.is_empty());
        let mut v = vec![42u64];
        external_sort_by(&m, &mut v, |&x| x);
        assert_eq!(v, vec![42]);
    }

    #[test]
    fn io_cost_has_merge_sort_shape() {
        // With M/B = 8 frames and n = 64·8·8 items of u64, there should be
        // roughly log_{7}(n/run) + 1 ≈ 2 passes; cost well under 10·n/B.
        let b = 64;
        let m = CostModel::new(EmConfig::with_memory(b, 8));
        let n = b * 8 * 8 * 4;
        let mut v: Vec<u64> = (0..n as u64).rev().collect();
        m.reset();
        external_sort_by(&m, &mut v, |&x| x);
        let total = m.report().total();
        let n_over_b = (n as u64).div_ceil(b as u64);
        assert!(total <= 10 * n_over_b, "total {total} vs n/B {n_over_b}");
        assert!(total >= 2 * n_over_b, "sorting can't be cheaper than a read+write pass");
    }
}
