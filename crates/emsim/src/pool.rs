//! A small LRU buffer pool modelling the `M/B` block frames of main memory.
//!
//! Keys are `(array_id, block_idx)` pairs; the pool answers "was this block
//! already resident?" and maintains recency with an intrusive doubly-linked
//! list over a slab, so every operation is O(1).

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Frame {
    key: (u64, u64),
    prev: usize,
    next: usize,
}

/// An LRU set of block identifiers with fixed capacity.
#[derive(Debug)]
pub struct LruPool {
    capacity: usize,
    map: HashMap<(u64, u64), usize>,
    frames: Vec<Frame>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
    hits: u64,
    misses: u64,
}

impl LruPool {
    /// A pool with room for `capacity` blocks. Capacity 0 caches nothing.
    pub fn new(capacity: usize) -> Self {
        LruPool {
            capacity,
            map: HashMap::with_capacity(capacity),
            frames: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Record an access to `(array_id, block_idx)`.
    ///
    /// Returns `true` on a hit (block was resident), `false` on a miss; on a
    /// miss the block is brought in, evicting the LRU block if full.
    pub fn access(&mut self, array_id: u64, block_idx: u64) -> bool {
        if self.probe(array_id, block_idx) {
            return true;
        }
        self.admit(array_id, block_idx);
        false
    }

    /// Hit-only half of [`LruPool::access`]: if the block is resident,
    /// promote it and count a hit; otherwise change *nothing* (no miss is
    /// counted). Pair with [`LruPool::admit`] or [`LruPool::record_miss`]
    /// once the outcome of the disk read is known — the fallible read path
    /// uses this so a failed read never caches the block it failed to read.
    pub fn probe(&mut self, array_id: u64, block_idx: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&slot) = self.map.get(&(array_id, block_idx)) {
            self.unlink(slot);
            self.push_front(slot);
            self.hits += 1;
            return true;
        }
        false
    }

    /// Count a miss without caching anything (a disk read that failed).
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Count a miss and bring the block in, evicting the LRU block if full.
    /// (With zero capacity only the miss is counted.)
    pub fn admit(&mut self, array_id: u64, block_idx: u64) {
        self.misses += 1;
        if self.capacity == 0 {
            return;
        }
        let key = (array_id, block_idx);
        if self.map.len() == self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.frames[victim].key);
            self.free.push(victim);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.frames[s].key = key;
                s
            }
            None => {
                self.frames.push(Frame {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                self.frames.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    /// `(hits, misses)` observed so far. Accesses while the pool has zero
    /// capacity count as misses, matching their I/O cost.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Zero the hit/miss statistics (residency is untouched).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Fold another pool's statistics into this one (used when a scoped
    /// child meter rolls up into its parent).
    pub fn absorb_stats(&mut self, hits: u64, misses: u64) {
        self.hits += hits;
        self.misses += misses;
    }

    /// Evict everything. Hit/miss statistics are kept.
    pub fn clear(&mut self) {
        self.map.clear();
        self.frames.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.frames[slot].prev, self.frames[slot].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.frames[slot].prev = NIL;
        self.frames[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.frames[slot].prev = NIL;
        self.frames[slot].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_never_hits() {
        let mut p = LruPool::new(0);
        assert!(!p.access(0, 0));
        assert!(!p.access(0, 0));
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn hit_after_miss() {
        let mut p = LruPool::new(2);
        assert!(!p.access(0, 7));
        assert!(p.access(0, 7));
    }

    #[test]
    fn lru_eviction_order() {
        let mut p = LruPool::new(2);
        p.access(0, 1);
        p.access(0, 2);
        p.access(0, 1); // 1 is now MRU; 2 is LRU
        p.access(0, 3); // evicts 2
        assert!(p.access(0, 1));
        assert!(!p.access(0, 2));
    }

    #[test]
    fn distinct_arrays_do_not_collide() {
        let mut p = LruPool::new(4);
        assert!(!p.access(0, 0));
        assert!(!p.access(1, 0));
        assert!(p.access(0, 0));
        assert!(p.access(1, 0));
    }

    #[test]
    fn clear_evicts_all() {
        let mut p = LruPool::new(4);
        p.access(0, 0);
        p.access(0, 1);
        p.clear();
        assert!(p.is_empty());
        assert!(!p.access(0, 0));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut p = LruPool::new(2);
        p.access(0, 1); // miss
        p.access(0, 1); // hit
        p.access(0, 2); // miss
        p.access(0, 3); // miss, evicts 1
        p.access(0, 1); // miss
        assert_eq!(p.stats(), (1, 4));
        p.absorb_stats(2, 3);
        assert_eq!(p.stats(), (3, 7));
        p.clear();
        assert_eq!(p.stats(), (3, 7), "clear keeps stats");
        p.reset_stats();
        assert_eq!(p.stats(), (0, 0));
    }

    #[test]
    fn zero_capacity_counts_misses() {
        let mut p = LruPool::new(0);
        p.access(0, 0);
        p.access(0, 0);
        assert_eq!(p.stats(), (0, 2));
    }

    #[test]
    fn probe_never_admits_and_record_miss_never_caches() {
        let mut p = LruPool::new(2);
        assert!(!p.probe(0, 0), "cold probe misses");
        assert_eq!(p.stats(), (0, 0), "probe alone counts nothing");
        p.record_miss(); // a failed disk read: cost observed, nothing cached
        assert_eq!(p.stats(), (0, 1));
        assert!(!p.probe(0, 0), "failed read did not cache the block");
        p.admit(0, 0);
        assert!(p.probe(0, 0), "admit caches");
        assert_eq!(p.stats(), (1, 2));
    }

    #[test]
    fn zero_capacity_admit_counts_but_never_caches() {
        let mut p = LruPool::new(0);
        p.admit(0, 0);
        assert_eq!(p.stats(), (0, 1));
        assert!(p.is_empty());
    }

    #[test]
    fn stress_against_reference_model() {
        // Compare with a simple Vec-based LRU model.
        let mut p = LruPool::new(3);
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut x: u64 = 12345;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            let key = (x >> 61, (x >> 33) % 6);
            let hit = p.access(key.0, key.1);
            let model_hit = if let Some(pos) = model.iter().position(|&k| k == key) {
                model.remove(pos);
                model.insert(0, key);
                true
            } else {
                model.insert(0, key);
                model.truncate(3);
                false
            };
            assert_eq!(hit, model_hit);
        }
    }
}
