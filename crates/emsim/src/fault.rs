//! Deterministic fault injection for the simulated disk.
//!
//! A [`FaultPlan`] decides, per `(array_id, block, attempt)` triple, whether
//! a block read succeeds, fails transiently, hits a permanently bad block,
//! or returns silently corrupted data (caught by the per-block checksums of
//! [`crate::BlockArray`] / [`crate::BTree`]). The decisions are pure
//! functions of the plan's seed — the same RNG discipline as the parallel
//! experiment harness — so a fault sweep is reproducible at any thread
//! count and a [`Retrier`] replaying an access sees a consistent device.
//!
//! The infallible [`crate::CostModel::touch`] path never consults the plan:
//! fault-free code keeps its exact I/O counts (no meter drift), and only
//! call sites that opted into the `try_*` accessors observe faults.
//!
//! A process-global plan can be installed with [`install_global_plan`] (or
//! the `FAULT_RATE` / `FAULT_SEED` environment variables, read once) so a
//! soak test can subject every [`crate::CostModel`] created afterwards to
//! the same failure regime without threading a plan through every build.

use std::sync::OnceLock;

use crate::sync::atomic::{AtomicBool, Ordering::Relaxed};
use crate::sync::Mutex;

use crate::error::EmError;

/// `SplitMix64` finalizer: the bit mixer behind every fault decision (also
/// used by the storage layer to derive per-block checksum sentinels).
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform float in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const SALT_TRANSIENT: u64 = 0x7472_616E_7369; // "transi"
const SALT_PERMANENT: u64 = 0x7065_726D; // "perm"
const SALT_CORRUPT: u64 = 0x636F_7272; // "corr"
const SALT_TORN: u64 = 0x746F_726E; // "torn"
const SALT_SHORT: u64 = 0x7368_6F72; // "shor"

/// Which device class an armed [`FaultPlan`] applies to.
///
/// `install_global_plan` used to assume one logical substrate; with real
/// devices in the process a chaos plan armed for a [`crate::FileDevice`]
/// torture run must not silently also fire on the in-memory meters that the
/// golden baselines are recorded against. A plan scoped to a class is inert
/// (both its logical rates and its device fault kinds) on meters and devices
/// of any other class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultScope {
    /// The plan applies everywhere (the historical behavior, and the
    /// default).
    #[default]
    Any,
    /// The plan applies only to meters/devices backed by the in-memory
    /// simulator ([`crate::MemDevice`]).
    Mem,
    /// The plan applies only to meters/devices backed by the file store
    /// ([`crate::FileDevice`]).
    File,
}

/// A deterministic, seed-driven description of which block reads fail.
///
/// Rates are probabilities in `[0, 1]`:
///
/// * `transient` — each *attempt* on a block independently fails with this
///   probability (so a retry usually clears it);
/// * `permanent` — each *block* is permanently unreadable with this
///   probability (every attempt fails);
/// * `corrupt` — each *block* silently corrupts with this probability (the
///   read "succeeds" but the checksum comparison fails, on every attempt).
///
/// Besides the logical rates, a plan can arm *physical* fault kinds that
/// only a [`crate::BlockDevice`] interprets:
///
/// * `torn_write` — each device write independently persists only a prefix
///   of the payload with this probability (a lying disk: the writer sees
///   success; the tear surfaces later as [`EmError::Corrupt`] when the
///   block's CRC fails);
/// * `short_read` — each device read independently returns short with this
///   probability (surfaced as a retryable [`EmError::Transient`]);
/// * `crash_after` — `CrashPoint(n)`: the `n`-th physical write (0-based)
///   is torn mid-sector and the device is poisoned — every subsequent
///   operation fails with [`EmError::Io`], modeling the process image dying.
///   Recovery is exercised by reopening the store with
///   [`crate::FileDevice::open`].
///
/// `scope` restricts the whole plan (logical and physical kinds alike) to
/// one device class; see [`FaultScope`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault universe; two plans with equal rates but different
    /// seeds fail different blocks.
    pub seed: u64,
    /// Per-attempt transient read failure probability.
    pub transient: f64,
    /// Per-block permanent bad-block probability.
    pub permanent: f64,
    /// Per-block silent-corruption probability.
    pub corrupt: f64,
    /// Per-write torn-write (prefix-only persistence) probability.
    pub torn_write: f64,
    /// Per-read short-read probability.
    pub short_read: f64,
    /// Poison the device after this 0-based physical write index, tearing
    /// that write mid-sector. `None` = never crash.
    pub crash_after: Option<u64>,
    /// Which device class the plan (all kinds) applies to.
    pub scope: FaultScope,
}

impl FaultPlan {
    /// The fault-free plan (all rates zero). This is the default of every
    /// [`crate::CostModel`] unless a global plan is installed.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            transient: 0.0,
            permanent: 0.0,
            corrupt: 0.0,
            torn_write: 0.0,
            short_read: 0.0,
            crash_after: None,
            scope: FaultScope::Any,
        }
    }

    /// A plan with the given seed and all rates zero; chain the `with_*`
    /// setters to arm it.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Set the per-attempt transient failure rate.
    pub fn with_transient(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.transient = rate;
        self
    }

    /// Set the per-block permanent bad-block rate.
    pub fn with_permanent(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.permanent = rate;
        self
    }

    /// Set the per-block silent-corruption rate.
    pub fn with_corrupt(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.corrupt = rate;
        self
    }

    /// Set the per-write torn-write rate (device-level; see the type docs).
    pub fn with_torn_write(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.torn_write = rate;
        self
    }

    /// Set the per-read short-read rate (device-level; see the type docs).
    pub fn with_short_read(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.short_read = rate;
        self
    }

    /// Poison the device after its `n`-th physical write (0-based), tearing
    /// that write — the `CrashPoint(n)` fault kind.
    pub fn with_crash_point(mut self, n: u64) -> Self {
        self.crash_after = Some(n);
        self
    }

    /// Restrict the plan to one device class; see [`FaultScope`].
    pub fn with_scope(mut self, scope: FaultScope) -> Self {
        self.scope = scope;
        self
    }

    /// A convenience mixed profile for chaos runs: transient at `rate`,
    /// permanent at `rate/4`, corruption at `rate/8`.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        FaultPlan::new(seed)
            .with_transient(rate)
            .with_permanent(rate / 4.0)
            .with_corrupt(rate / 8.0)
    }

    /// Whether any *logical* fault (transient / bad-block / corruption) can
    /// ever fire. Device-level kinds are reported by
    /// [`FaultPlan::has_device_faults`].
    pub fn is_active(&self) -> bool {
        self.transient > 0.0 || self.permanent > 0.0 || self.corrupt > 0.0
    }

    /// Whether any device-level fault kind (torn write / short read /
    /// crash point) is armed.
    pub fn has_device_faults(&self) -> bool {
        self.torn_write > 0.0 || self.short_read > 0.0 || self.crash_after.is_some()
    }

    /// Whether the plan's scope covers `class`.
    pub fn applies_to(&self, class: crate::device::DeviceClass) -> bool {
        match self.scope {
            FaultScope::Any => true,
            FaultScope::Mem => class == crate::device::DeviceClass::Mem,
            FaultScope::File => class == crate::device::DeviceClass::File,
        }
    }

    /// The plan as seen by a meter or device of class `class`: `self` when
    /// the scope covers it, [`FaultPlan::none`] otherwise. This is the
    /// choke point that keeps a file-scoped chaos plan from firing on the
    /// in-memory golden-baseline meters in the same process.
    pub fn for_class(&self, class: crate::device::DeviceClass) -> FaultPlan {
        if self.applies_to(class) {
            *self
        } else {
            FaultPlan::none()
        }
    }

    /// Whether the `index`-th physical device write is torn (only a prefix
    /// of the payload reaches the medium).
    pub fn is_torn_write(&self, index: u64) -> bool {
        self.torn_write > 0.0 && unit(self.hash(SALT_TORN, index, 0, 0)) < self.torn_write
    }

    /// Whether the `index`-th physical device read returns short (the
    /// device-level analogue of a transient fault; callers retry).
    pub fn is_short_read(&self, index: u64) -> bool {
        self.short_read > 0.0 && unit(self.hash(SALT_SHORT, index, 0, 0)) < self.short_read
    }

    fn hash(&self, salt: u64, array_id: u64, block: u64, attempt: u64) -> u64 {
        mix(mix(mix(mix(self.seed ^ salt) ^ array_id) ^ block) ^ attempt)
    }

    /// Whether this block is permanently unreadable under the plan.
    pub fn is_bad_block(&self, array_id: u64, block: u64) -> bool {
        self.permanent > 0.0
            && unit(self.hash(SALT_PERMANENT, array_id, block, 0)) < self.permanent
    }

    /// Whether this block's payload is silently corrupted under the plan.
    /// Bad blocks are not additionally corrupted (the read already fails).
    pub fn is_corrupted(&self, array_id: u64, block: u64) -> bool {
        self.corrupt > 0.0
            && !self.is_bad_block(array_id, block)
            && unit(self.hash(SALT_CORRUPT, array_id, block, 0)) < self.corrupt
    }

    /// A nonzero mask `XORed` into a corrupted block's stored checksum to
    /// model the scrambled payload a real device would return.
    pub fn corruption_mask(&self, array_id: u64, block: u64) -> u64 {
        self.hash(SALT_CORRUPT ^ 0xFF, array_id, block, 0) | 1
    }

    /// The outcome of disk-read `attempt` (0-based) on a block: `Ok(())` if
    /// the device returned data, or the injected failure. Corruption is
    /// *not* reported here — it is silent by definition and only surfaces
    /// through the checksum verification of the storage layer.
    pub fn read_outcome(&self, array_id: u64, block: u64, attempt: u32) -> Result<(), EmError> {
        if self.is_bad_block(array_id, block) {
            return Err(EmError::BadBlock { array_id, block });
        }
        if self.transient > 0.0
            && unit(self.hash(SALT_TRANSIENT, array_id, block, attempt as u64)) < self.transient
        {
            return Err(EmError::Transient { array_id, block });
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Bounded-retry policy for transient faults.
///
/// `budget` is the number of *re*-attempts after the first failure; a budget
/// of 0 fails fast. Each attempt is a real disk read, so the substrate
/// charges one read I/O per attempt (successful or not) — recovery cost is
/// visible in the [`crate::IoReport`], which is the "I/O-charged backoff"
/// the experiments plot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Retrier {
    /// Maximum retries after the first failed attempt.
    pub budget: u32,
}

impl Retrier {
    /// A retrier with the given budget.
    pub fn new(budget: u32) -> Self {
        Retrier { budget }
    }

    /// No retries: every transient fault is surfaced immediately.
    pub fn fail_fast() -> Self {
        Retrier { budget: 0 }
    }

    /// Budget from the `RETRY_BUDGET` environment variable, defaulting to 3
    /// (the same default as [`Retrier::default`]).
    pub fn from_env() -> Self {
        let budget = std::env::var("RETRY_BUDGET")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(3);
        Retrier { budget }
    }

    /// Run `f(attempt)` for attempts `0, 1, …` until it succeeds, fails
    /// non-transiently, or the budget is exhausted (in which case the last
    /// transient error is converted to [`EmError::Exhausted`]).
    pub fn run<T>(&self, mut f: impl FnMut(u32) -> Result<T, EmError>) -> Result<T, EmError> {
        let mut last = None;
        for attempt in 0..=self.budget {
            match f(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        let (array_id, block) = last
            .expect("loop ran at least once and only falls through on a stored transient error")
            .location();
        Err(EmError::Exhausted {
            array_id,
            block,
            attempts: self.budget + 1,
        })
    }
}

impl Default for Retrier {
    fn default() -> Self {
        Retrier { budget: 3 }
    }
}

/// The process-global plan, if installed; guards every `CostModel::new`.
static GLOBAL_PLAN: Mutex<FaultPlan> = Mutex::new(FaultPlan {
    seed: 0,
    transient: 0.0,
    permanent: 0.0,
    corrupt: 0.0,
    torn_write: 0.0,
    short_read: 0.0,
    crash_after: None,
    scope: FaultScope::Any,
});
static GLOBAL_ACTIVE: AtomicBool = AtomicBool::new(false);
static ENV_PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();

/// The plan from `FAULT_RATE` / `FAULT_SEED` environment variables (read
/// once per process): `FAULT_RATE=r` is shorthand for the
/// [`FaultPlan::chaos`] profile at rate `r`.
fn env_plan() -> Option<FaultPlan> {
    *ENV_PLAN.get_or_init(|| {
        let rate: f64 = std::env::var("FAULT_RATE").ok()?.parse().ok()?;
        if rate.is_nan() || rate <= 0.0 {
            return None;
        }
        let seed = std::env::var("FAULT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xFA_017);
        Some(FaultPlan::chaos(seed, rate.min(1.0)))
    })
}

/// Install a process-global plan: every [`crate::CostModel`] created afterwards
/// starts with this plan (explicit [`crate::CostModel::with_faults`] /
/// [`crate::CostModel::set_fault_plan`] calls still override it per meter).
/// Used by soak tests; pair with [`clear_global_plan`].
pub fn install_global_plan(plan: FaultPlan) {
    *GLOBAL_PLAN.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = plan;
    GLOBAL_ACTIVE.store(true, Relaxed);
}

/// Remove the process-global plan installed by [`install_global_plan`].
pub fn clear_global_plan() {
    GLOBAL_ACTIVE.store(false, Relaxed);
}

/// The plan newly created meters inherit: the installed global plan, else
/// the environment plan, else [`FaultPlan::none`].
pub fn ambient_plan() -> FaultPlan {
    if GLOBAL_ACTIVE.load(Relaxed) {
        return *GLOBAL_PLAN.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    env_plan().unwrap_or_else(FaultPlan::none)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        for b in 0..1_000 {
            assert_eq!(p.read_outcome(0, b, 0), Ok(()));
            assert!(!p.is_bad_block(0, b));
            assert!(!p.is_corrupted(0, b));
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let p1 = FaultPlan::new(1).with_permanent(0.2);
        let p2 = FaultPlan::new(2).with_permanent(0.2);
        let a: Vec<bool> = (0..200).map(|b| p1.is_bad_block(5, b)).collect();
        let b: Vec<bool> = (0..200).map(|b| p1.is_bad_block(5, b)).collect();
        let c: Vec<bool> = (0..200).map(|b| p2.is_bad_block(5, b)).collect();
        assert_eq!(a, b, "same plan, same decisions");
        assert_ne!(a, c, "different seeds fail different blocks");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = FaultPlan::new(42).with_permanent(0.1);
        let bad = (0..20_000).filter(|&b| p.is_bad_block(0, b)).count();
        assert!((1_200..2_800).contains(&bad), "bad = {bad}");
        let p = FaultPlan::new(42).with_transient(0.3);
        let fails = (0..20_000)
            .filter(|&b| p.read_outcome(0, b, 0).is_err())
            .count();
        assert!((4_800..7_200).contains(&fails), "fails = {fails}");
    }

    #[test]
    fn transient_faults_clear_across_attempts() {
        let p = FaultPlan::new(7).with_transient(0.5);
        // Find a block whose first attempt fails; some later attempt must
        // succeed (probability of 50 consecutive failures ~ 2^-50).
        let block = (0..1_000)
            .find(|&b| p.read_outcome(0, b, 0).is_err())
            .expect("at rate 0.5 some first attempt fails");
        assert!(
            (1..50).any(|a| p.read_outcome(0, block, a).is_ok()),
            "transient fault never cleared"
        );
    }

    #[test]
    fn bad_blocks_fail_every_attempt() {
        let p = FaultPlan::new(3).with_permanent(0.2);
        let block = (0..1_000)
            .find(|&b| p.is_bad_block(9, b))
            .expect("some bad block at rate 0.2");
        for attempt in 0..20 {
            assert_eq!(
                p.read_outcome(9, block, attempt),
                Err(EmError::BadBlock { array_id: 9, block })
            );
        }
    }

    #[test]
    fn corruption_is_silent_and_disjoint_from_bad_blocks() {
        let p = FaultPlan::new(11).with_corrupt(0.3).with_permanent(0.3);
        let mut corrupted = 0;
        for b in 0..2_000 {
            if p.is_corrupted(4, b) {
                corrupted += 1;
                // Silent: the read itself succeeds (unless transient).
                assert_eq!(p.read_outcome(4, b, 0), Ok(()));
                assert!(!p.is_bad_block(4, b));
                assert_ne!(p.corruption_mask(4, b), 0);
            }
        }
        assert!(corrupted > 100, "corrupted = {corrupted}");
    }

    #[test]
    fn retrier_retries_transients_within_budget() {
        let mut calls = 0;
        let r = Retrier::new(3);
        let out = r.run(|attempt| {
            calls += 1;
            if attempt < 2 {
                Err(EmError::Transient { array_id: 0, block: 0 })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(2));
        assert_eq!(calls, 3);
    }

    #[test]
    fn retrier_exhausts_into_typed_error() {
        let r = Retrier::new(2);
        let out: Result<(), _> = r.run(|_| Err(EmError::Transient { array_id: 1, block: 9 }));
        assert_eq!(
            out,
            Err(EmError::Exhausted { array_id: 1, block: 9, attempts: 3 })
        );
    }

    #[test]
    fn retrier_does_not_retry_permanent_faults() {
        let mut calls = 0;
        let out: Result<(), _> = Retrier::new(5).run(|_| {
            calls += 1;
            Err(EmError::BadBlock { array_id: 0, block: 3 })
        });
        assert_eq!(out, Err(EmError::BadBlock { array_id: 0, block: 3 }));
        assert_eq!(calls, 1, "permanent faults fail fast");
    }

    #[test]
    fn device_fault_kinds_are_deterministic_and_scoped() {
        use crate::device::DeviceClass;
        let p = FaultPlan::new(17)
            .with_torn_write(0.3)
            .with_short_read(0.3)
            .with_crash_point(5);
        assert!(p.has_device_faults());
        assert!(!p.is_active(), "device kinds alone don't arm the logical path");
        let torn: Vec<bool> = (0..500).map(|i| p.is_torn_write(i)).collect();
        assert_eq!(torn, (0..500).map(|i| p.is_torn_write(i)).collect::<Vec<_>>());
        assert!(torn.iter().any(|&t| t) && torn.iter().any(|&t| !t));
        // Scoping: a file-only plan is inert for the Mem class.
        let scoped = p.with_scope(FaultScope::File);
        assert!(scoped.applies_to(DeviceClass::File));
        assert!(!scoped.applies_to(DeviceClass::Mem));
        assert_eq!(scoped.for_class(DeviceClass::Mem), FaultPlan::none());
        assert_eq!(scoped.for_class(DeviceClass::File), scoped);
    }

    #[test]
    fn global_plan_install_and_clear() {
        // Serialized within this test binary only; the plan is cleared
        // before returning so other tests see the ambient default.
        let plan = FaultPlan::chaos(99, 0.25);
        install_global_plan(plan);
        assert_eq!(ambient_plan(), plan);
        let m = crate::CostModel::new(crate::EmConfig::new(64));
        assert!(m.fault_plan().is_active());
        clear_global_plan();
        let m2 = crate::CostModel::new(crate::EmConfig::new(64));
        assert!(!m2.fault_plan().is_active());
    }
}
