//! A sharded buffer pool with CLOCK (second-chance) eviction.
//!
//! [`crate::LruPool`] models residency exactly but serializes every access
//! behind one mutex — fine for single-thread measurements, hostile to a
//! meter shared by many query threads. `ShardedPool` splits the `M/B`
//! frames into `N` shards keyed by a hash of `(array_id, block_idx)`; each
//! shard has its own lock, so threads touching different shards never
//! contend, and the hot hit path does one hash, one short critical
//! section, and one atomic reference-bit store.
//!
//! Within a shard, eviction is CLOCK/second-chance: frames sit on a
//! circular list with an atomic reference bit that [`ShardedPool::probe`]
//! sets on every hit; the clock hand sweeps on [`ShardedPool::admit`],
//! clearing set bits and evicting the first frame whose bit is already
//! clear. CLOCK approximates LRU without maintaining a recency list, which
//! is exactly why real buffer managers use it under concurrency.
//!
//! Semantics match `LruPool` access-for-access: `probe` counts a hit only
//! when resident and changes nothing on a miss, `admit` counts a miss and
//! caches, `record_miss` counts a miss without caching (failed reads), and
//! zero capacity caches nothing while still counting misses. The one
//! intended divergence is the *eviction order* under pressure: CLOCK gives
//! recently-referenced frames a second chance instead of exact LRU order.
//! While no eviction occurs the two are indistinguishable — the property
//! test `pool_property.rs` pins that equivalence.

use std::collections::HashMap;
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use crate::sync::Mutex;

use crate::cost::lock_recover;

/// One cached block: its key and the CLOCK reference bit.
#[derive(Debug)]
struct ClockFrame {
    key: (u64, u64),
    referenced: AtomicBool,
}

/// One shard: a CLOCK ring plus its hit/miss counters, all behind the
/// shard's mutex (counters included, so a shard update is one lock, no
/// extra atomic traffic).
#[derive(Debug)]
struct ClockShard {
    capacity: usize,
    map: HashMap<(u64, u64), usize>,
    frames: Vec<ClockFrame>,
    hand: usize,
    hits: u64,
    misses: u64,
}

impl ClockShard {
    fn new(capacity: usize) -> Self {
        ClockShard {
            capacity,
            map: HashMap::with_capacity(capacity),
            frames: Vec::with_capacity(capacity),
            hand: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn probe(&mut self, key: (u64, u64)) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.frames[slot].referenced.store(true, Relaxed);
            self.hits += 1;
            return true;
        }
        false
    }

    fn admit(&mut self, key: (u64, u64)) {
        self.misses += 1;
        if self.capacity == 0 || self.map.contains_key(&key) {
            return;
        }
        if self.frames.len() < self.capacity {
            self.map.insert(key, self.frames.len());
            self.frames.push(ClockFrame {
                key,
                referenced: AtomicBool::new(true),
            });
            return;
        }
        // Second-chance sweep: clear set bits as the hand passes; evict the
        // first frame found with its bit already clear. Terminates within
        // two sweeps (the first sweep clears every bit it sees).
        loop {
            let frame = &self.frames[self.hand];
            if frame.referenced.swap(false, Relaxed) {
                self.hand = (self.hand + 1) % self.frames.len();
            } else {
                self.map.remove(&frame.key);
                self.map.insert(key, self.hand);
                self.frames[self.hand] = ClockFrame {
                    key,
                    referenced: AtomicBool::new(true),
                };
                self.hand = (self.hand + 1) % self.frames.len();
                return;
            }
        }
    }
}

/// A concurrent buffer pool: `N` independently-locked CLOCK shards.
///
/// Selected on a [`crate::CostModel`] via
/// [`crate::PoolPolicy::ShardedClock`]; the single-mutex
/// [`crate::LruPool`] stays the default so golden I/O baselines keep their
/// exact-LRU residency. All methods take `&self` — interior mutability per
/// shard is the point.
#[derive(Debug)]
pub struct ShardedPool {
    shards: Vec<Mutex<ClockShard>>,
    /// Statistics folded in from scoped child meters ([`ShardedPool::
    /// absorb_stats`]); kept out of the per-shard counters so
    /// [`ShardedPool::shard_stats`] reports only this pool's own traffic.
    absorbed_hits: AtomicU64,
    absorbed_misses: AtomicU64,
}

impl ShardedPool {
    /// A pool of `capacity` total frames split over `shards` shards (frame
    /// counts differ by at most one across shards). Capacity 0 caches
    /// nothing; `shards` must be at least 1.
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(shards >= 1, "a sharded pool needs at least one shard");
        let shards = (0..shards)
            .map(|i| {
                let cap = capacity / shards + usize::from(i < capacity % shards);
                Mutex::new(ClockShard::new(cap))
            })
            .collect();
        ShardedPool {
            shards,
            absorbed_hits: AtomicU64::new(0),
            absorbed_misses: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total frame capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).capacity).sum()
    }

    /// SplitMix64-style finalizer over the packed key, so consecutive
    /// `block_idx` values of one array spread across shards instead of
    /// convoying on one lock.
    fn shard_index(&self, array_id: u64, block_idx: u64) -> usize {
        let mut z = array_id
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(block_idx);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % self.shards.len() as u64) as usize
    }

    /// Record an access: `true` on a hit, `false` on a miss (the block is
    /// brought in, evicting by CLOCK if the shard is full).
    pub fn access(&self, array_id: u64, block_idx: u64) -> bool {
        let key = (array_id, block_idx);
        let mut shard = lock_recover(&self.shards[self.shard_index(array_id, block_idx)]);
        if shard.probe(key) {
            return true;
        }
        shard.admit(key);
        false
    }

    /// Hit-only half of [`ShardedPool::access`]: on a hit, set the
    /// reference bit and count the hit; on a miss change *nothing* (pair
    /// with [`ShardedPool::admit`] or [`ShardedPool::record_miss`] once the
    /// disk read's outcome is known, mirroring [`crate::LruPool::probe`]).
    pub fn probe(&self, array_id: u64, block_idx: u64) -> bool {
        lock_recover(&self.shards[self.shard_index(array_id, block_idx)])
            .probe((array_id, block_idx))
    }

    /// Count a miss on the owning shard without caching anything (a disk
    /// read that failed must not cache the block it failed to read).
    pub fn record_miss(&self, array_id: u64, block_idx: u64) {
        lock_recover(&self.shards[self.shard_index(array_id, block_idx)]).misses += 1;
    }

    /// Count a miss and bring the block in, evicting by CLOCK if the shard
    /// is full. (With zero capacity only the miss is counted.)
    pub fn admit(&self, array_id: u64, block_idx: u64) {
        lock_recover(&self.shards[self.shard_index(array_id, block_idx)])
            .admit((array_id, block_idx));
    }

    /// Total `(hits, misses)` across all shards, plus anything absorbed
    /// from scoped children.
    pub fn stats(&self) -> (u64, u64) {
        let mut hits = self.absorbed_hits.load(Relaxed);
        let mut misses = self.absorbed_misses.load(Relaxed);
        for shard in &self.shards {
            let s = lock_recover(shard);
            hits += s.hits;
            misses += s.misses;
        }
        (hits, misses)
    }

    /// Per-shard `(hits, misses)` in shard order — the load-balance view
    /// (absorbed child statistics are excluded; they have no shard).
    pub fn shard_stats(&self) -> Vec<(u64, u64)> {
        self.shards
            .iter()
            .map(|s| {
                let s = lock_recover(s);
                (s.hits, s.misses)
            })
            .collect()
    }

    /// Zero all hit/miss statistics (residency is untouched).
    pub fn reset_stats(&self) {
        self.absorbed_hits.store(0, Relaxed);
        self.absorbed_misses.store(0, Relaxed);
        for shard in &self.shards {
            let mut s = lock_recover(shard);
            s.hits = 0;
            s.misses = 0;
        }
    }

    /// Fold a scoped child meter's pool statistics into this pool.
    pub fn absorb_stats(&self, hits: u64, misses: u64) {
        self.absorbed_hits.fetch_add(hits, Relaxed);
        self.absorbed_misses.fetch_add(misses, Relaxed);
    }

    /// Evict everything. Hit/miss statistics are kept.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = lock_recover(shard);
            s.map.clear();
            s.frames.clear();
            s.hand = 0;
        }
    }

    /// Number of resident blocks across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).map.len()).sum()
    }

    /// Whether no block is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_splits_evenly_across_shards() {
        let p = ShardedPool::new(10, 4);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(p.capacity(), 10);
        let p1 = ShardedPool::new(7, 1);
        assert_eq!(p1.capacity(), 7);
    }

    #[test]
    fn hit_after_miss_and_zero_capacity_counts_misses() {
        let p = ShardedPool::new(4, 2);
        assert!(!p.access(0, 7));
        assert!(p.access(0, 7));
        assert_eq!(p.stats(), (1, 1));

        let z = ShardedPool::new(0, 2);
        assert!(!z.access(0, 0));
        assert!(!z.access(0, 0));
        assert_eq!(z.stats(), (0, 2));
        assert!(z.is_empty());
    }

    #[test]
    fn probe_never_admits_and_record_miss_never_caches() {
        let p = ShardedPool::new(4, 2);
        assert!(!p.probe(0, 0), "cold probe misses");
        assert_eq!(p.stats(), (0, 0), "probe alone counts nothing");
        p.record_miss(0, 0);
        assert_eq!(p.stats(), (0, 1));
        assert!(!p.probe(0, 0), "failed read did not cache the block");
        p.admit(0, 0);
        assert!(p.probe(0, 0), "admit caches");
        assert_eq!(p.stats(), (1, 2));
    }

    #[test]
    fn clock_eviction_is_second_chance_not_lru() {
        // One shard of 2 frames; admission sets the reference bit. After
        // [admit 1, admit 2, probe 1] every bit is set, so admitting 3
        // sweeps the full ring clearing bits and evicts the frame the hand
        // started on (block 1) — FIFO-like, NOT the LRU victim (block 2).
        let p = ShardedPool::new(2, 1);
        p.admit(0, 1);
        p.admit(0, 2);
        assert!(p.probe(0, 1));
        p.admit(0, 3);
        assert!(!p.probe(0, 1), "block 1 was evicted");
        assert!(p.probe(0, 2), "block 2 survived (second chance)");
        assert!(p.probe(0, 3), "block 3 is resident");

        // Ring is now [3, 2] with both bits set (the probes above) and the
        // hand at slot 1: admitting 4 clears 2 then 3, wraps, evicts 2.
        p.admit(0, 4);
        assert!(!p.probe(0, 2));
        assert!(p.probe(0, 3));
        assert!(p.probe(0, 4));
    }

    #[test]
    fn distinct_arrays_do_not_collide() {
        let p = ShardedPool::new(8, 4);
        assert!(!p.access(0, 0));
        assert!(!p.access(1, 0));
        assert!(p.access(0, 0));
        assert!(p.access(1, 0));
    }

    #[test]
    fn clear_evicts_all_and_keeps_stats() {
        let p = ShardedPool::new(8, 4);
        p.access(0, 0);
        p.access(0, 1);
        p.access(0, 0);
        assert_eq!(p.len(), 2);
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.stats(), (1, 2), "clear keeps stats");
        assert!(!p.access(0, 0), "cold again after clear");
        p.reset_stats();
        assert_eq!(p.stats(), (0, 0));
    }

    #[test]
    fn absorbed_stats_count_in_totals_but_not_per_shard() {
        let p = ShardedPool::new(8, 2);
        p.access(0, 0);
        p.absorb_stats(10, 20);
        assert_eq!(p.stats(), (10, 21));
        let per: (u64, u64) = p
            .shard_stats()
            .iter()
            .fold((0, 0), |acc, s| (acc.0 + s.0, acc.1 + s.1));
        assert_eq!(per, (0, 1), "absorbed stats have no shard");
    }

    #[test]
    fn shard_stats_reflect_key_spreading() {
        // 256 distinct blocks over 8 shards: the hash must not dump
        // everything on one shard.
        let p = ShardedPool::new(512, 8);
        for blk in 0..256 {
            p.access(3, blk);
        }
        let stats = p.shard_stats();
        assert_eq!(stats.len(), 8);
        let loaded = stats.iter().filter(|s| s.1 > 0).count();
        assert!(loaded >= 6, "only {loaded}/8 shards saw traffic");
        assert_eq!(stats.iter().map(|s| s.1).sum::<u64>(), 256);
    }

    #[test]
    fn concurrent_hammering_conserves_accesses() {
        // 4 threads × 1000 accesses on a shared pool: hits + misses must
        // equal exactly the number of accesses (no lost updates).
        let p = std::sync::Arc::new(ShardedPool::new(64, 8));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let p = std::sync::Arc::clone(&p);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        p.access(t, i % 100);
                    }
                });
            }
        });
        let (h, m) = p.stats();
        assert_eq!(h + m, 4000);
    }
}
