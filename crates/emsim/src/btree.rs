//! An external B-tree with fanout `Θ(B)`.
//!
//! Each node occupies one disk block; visiting a node charges one I/O to the
//! [`CostModel`]. Searches therefore cost `O(log_B n)` I/Os and a range
//! report of `t` items costs `O(log_B n + t/B)` — the textbook bounds the
//! paper's instantiations lean on (e.g. the weight B-tree of §5.5 and the
//! `Q_pri ≥ log_B n` precondition of Theorem 1).
//!
//! Supports bulk build from sorted data, point lookup, predecessor search,
//! in-order range reporting, insert, and delete with rebalancing.

use crate::cost::CostModel;
use crate::error::EmError;
use crate::fault::{self, Retrier};

/// The checksum stored alongside node `node` of tree `array_id` — the same
/// address-derived sentinel scheme as [`crate::BlockArray`] (see
/// `block::block_checksum`): corruption injected by the fault plan XORs a
/// nonzero mask into the value read back, so verification fails exactly on
/// the nodes the plan corrupted.
fn node_checksum(array_id: u64, node: u64) -> u64 {
    fault::mix(fault::mix(array_id ^ 0xB7EE_B7EE) ^ fault::mix(node))
}

#[derive(Debug)]
struct Node<K, V> {
    keys: Vec<K>,
    /// Leaf payloads (empty for internal nodes).
    vals: Vec<V>,
    /// Child node ids (empty for leaves). `children.len() == keys.len() + 1`
    /// for internal nodes, where `keys` are separators: subtree `i` holds
    /// keys `< keys[i]`, subtree `i+1` holds keys `≥ keys[i]`.
    children: Vec<usize>,
}

impl<K, V> Node<K, V> {
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// An external-memory B-tree mapping `K` to `V`.
///
/// Keys must be unique (mirroring the paper's distinct-weight assumption).
#[derive(Debug)]
pub struct BTree<K, V> {
    nodes: Vec<Node<K, V>>,
    root: usize,
    len: usize,
    /// Max keys per leaf / max children per internal node.
    fanout: usize,
    array_id: u64,
    model: CostModel,
    free: Vec<usize>,
    /// Per-node checksums (indexed like `nodes`), written on allocation;
    /// the `try_*` accessors re-verify them after every successful read.
    checksums: Vec<u64>,
}

impl<K: Ord + Clone, V: Clone> BTree<K, V> {
    /// Minimum occupancy (keys in a leaf, children in an internal node).
    /// Quarter occupancy (rather than half) leaves slack for the ~2/3-full
    /// bulk build and its rebalanced tail groups.
    fn min_fill(&self) -> usize {
        (self.fanout / 4).max(2)
    }

    /// An empty tree on the given machine. The fanout is `⌊B / words(K,V)⌋`,
    /// clamped to at least 4 so the tree degenerates gracefully in RAM mode.
    pub fn new(model: &CostModel) -> Self {
        let fanout = model.config().items_per_block::<(K, V)>().max(4);
        let nodes = vec![Node {
            keys: Vec::new(),
            vals: Vec::new(),
            children: Vec::new(),
        }];
        let array_id = model.new_array_id();
        let tree = BTree {
            nodes,
            root: 0,
            len: 0,
            fanout,
            array_id,
            model: model.clone(),
            free: Vec::new(),
            checksums: vec![node_checksum(array_id, 0)],
        };
        tree.mirror_node(0);
        tree
    }

    /// Bulk-build from key-sorted `(K, V)` pairs in `O(n/B)` write I/Os.
    ///
    /// Panics if the input is not strictly increasing in `K`.
    pub fn from_sorted(model: &CostModel, pairs: Vec<(K, V)>) -> Self {
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0, "BTree::from_sorted requires strictly increasing keys");
        }
        let mut tree = BTree::new(model);
        if pairs.is_empty() {
            return tree;
        }
        tree.len = pairs.len();
        tree.nodes.clear();

        // Build leaves with ~2/3 fill so that subsequent inserts don't split
        // immediately and deletes don't merge immediately.
        let target = (tree.fanout * 2 / 3).max(2);
        let mut level: Vec<(usize, K)> = Vec::new(); // (node id, min key)
        let mut it = pairs.into_iter().peekable();
        while it.peek().is_some() {
            let mut keys = Vec::with_capacity(target);
            let mut vals = Vec::with_capacity(target);
            for _ in 0..target {
                match it.next() {
                    Some((k, v)) => {
                        keys.push(k);
                        vals.push(v);
                    }
                    None => break,
                }
            }
            let min = keys[0].clone();
            let id = tree.alloc(Node {
                keys,
                vals,
                children: Vec::new(),
            });
            level.push((id, min));
        }
        // Avoid an undersized final leaf: merge it into its left sibling if
        // the union fits in one block, else split the union evenly (both
        // halves then exceed min_fill because the union exceeds the fanout).
        if level.len() >= 2 {
            let last = level.len() - 1;
            let need = tree.min_fill();
            if tree.nodes[level[last].0].keys.len() < need {
                let (lid, rid) = (level[last - 1].0, level[last].0);
                let total = tree.nodes[lid].keys.len() + tree.nodes[rid].keys.len();
                if total <= tree.fanout {
                    let mut keys = std::mem::take(&mut tree.nodes[rid].keys);
                    let mut vals = std::mem::take(&mut tree.nodes[rid].vals);
                    tree.nodes[lid].keys.append(&mut keys);
                    tree.nodes[lid].vals.append(&mut vals);
                    tree.free.push(rid);
                    level.pop();
                } else {
                    let keep = total / 2;
                    while tree.nodes[lid].keys.len() > keep {
                        // Invariant: keep = total/2 ≥ 1 (total > fanout ≥ 4
                        // here), so the left leaf never drains below one key
                        // and both pops see a non-empty, keys/vals-aligned
                        // leaf.
                        let k = tree.nodes[lid]
                            .keys
                            .pop()
                            .expect("left leaf keeps ≥ keep ≥ 1 keys during tail split");
                        let v = tree.nodes[lid]
                            .vals
                            .pop()
                            .expect("leaf vals stay aligned with keys");
                        tree.nodes[rid].keys.insert(0, k);
                        tree.nodes[rid].vals.insert(0, v);
                    }
                    level[last].1 = tree.nodes[rid].keys[0].clone();
                }
            }
        }

        // Build internal levels. Greedy chunks of `target` children, never
        // leaving a lone trailing child: if exactly one would remain we either
        // absorb it into the current group (group ≤ target+1 ≤ fanout) or, if
        // the remainder is small, take everything.
        while level.len() > 1 {
            let mut next: Vec<(usize, K)> = Vec::new();
            let mut chunk_start = 0;
            while chunk_start < level.len() {
                let remaining = level.len() - chunk_start;
                let min = tree.min_fill();
                // Never leave a remainder in (0, min): either absorb a small
                // tail into the final group (stays ≤ target+min ≤ fanout) or
                // split the remainder evenly (both halves ≥ min).
                let take = if remaining <= target + 1 {
                    remaining
                } else if remaining < target + min {
                    remaining / 2
                } else {
                    target
                };
                let group = &level[chunk_start..chunk_start + take];
                let children: Vec<usize> = group.iter().map(|&(id, _)| id).collect();
                let keys: Vec<K> = group[1..].iter().map(|(_, k)| k.clone()).collect();
                let min = group[0].1.clone();
                let id = tree.alloc(Node {
                    keys,
                    vals: Vec::new(),
                    children,
                });
                next.push((id, min));
                chunk_start += take;
            }
            level = next;
        }
        tree.root = level[0].0;
        tree.model.charge_writes(tree.nodes.len() as u64);
        tree
    }

    fn alloc(&mut self, node: Node<K, V>) -> usize {
        let id = if let Some(id) = self.free.pop() {
            self.nodes[id] = node;
            id
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        let sum = node_checksum(self.array_id, id as u64);
        if id < self.checksums.len() {
            self.checksums[id] = sum;
        } else {
            self.checksums.push(sum);
        }
        self.mirror_node(id);
        id
    }

    /// Mirror node `id`'s header image to the device (best-effort and
    /// unmetered, like [`crate::BlockArray`]'s block headers). The
    /// sentinel is a pure function of the node's address, so in-place key
    /// mutation never invalidates the mirror — one write per allocation
    /// suffices.
    fn mirror_node(&self, id: usize) {
        // Routed through the codec-aware image chokepoint like every other
        // mirror; node images are header-only (payload lives in native
        // memory), so every codec leaves them byte-identical.
        let image = crate::block::encode_image(
            crate::codec::active_codec(),
            crate::block::KIND_HEADER,
            self.array_id,
            id as u64,
            0,
            self.fanout as u32,
            self.checksums[id],
            &[],
        );
        self.model.device_write(self.array_id, id as u64, &image);
    }

    fn touch(&self, node: usize) {
        self.model.touch(self.array_id, node as u64);
    }

    /// Number of key-value pairs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Space in blocks (one block per live node).
    pub fn blocks(&self) -> u64 {
        (self.nodes.len() - self.free.len()) as u64
    }

    /// Tree height (number of levels), for diagnostics.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut u = self.root;
        while !self.nodes[u].is_leaf() {
            u = self.nodes[u].children[0];
            h += 1;
        }
        h
    }

    /// Point lookup, `O(log_B n)` I/Os.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut u = self.root;
        loop {
            self.touch(u);
            let node = &self.nodes[u];
            if node.is_leaf() {
                return match node.keys.binary_search(key) {
                    Ok(i) => Some(&node.vals[i]),
                    Err(_) => None,
                };
            }
            let i = node.keys.partition_point(|k| k <= key);
            u = node.children[i];
        }
    }

    /// Report all pairs with `lo ≤ key ≤ hi`, in key order.
    /// Costs `O(log_B n + t/B)` I/Os.
    pub fn range(&self, lo: &K, hi: &K, out: &mut Vec<(K, V)>) {
        self.range_while(lo, hi, |k, v| {
            out.push((k.clone(), v.clone()));
            true
        });
    }

    /// Like [`BTree::range`] but stops as soon as `f` returns `false`
    /// (cost-monitored reporting in the sense of §3.2).
    pub fn range_while(&self, lo: &K, hi: &K, mut f: impl FnMut(&K, &V) -> bool) {
        if self.len == 0 || lo > hi {
            return;
        }
        self.range_rec(self.root, lo, hi, &mut f);
    }

    fn range_rec(&self, u: usize, lo: &K, hi: &K, f: &mut impl FnMut(&K, &V) -> bool) -> bool {
        self.touch(u);
        let node = &self.nodes[u];
        if node.is_leaf() {
            let start = node.keys.partition_point(|k| k < lo);
            for i in start..node.keys.len() {
                if node.keys[i] > *hi {
                    return false;
                }
                if !f(&node.keys[i], &node.vals[i]) {
                    return false;
                }
            }
            return true;
        }
        let first = node.keys.partition_point(|k| k <= lo);
        let last = node.keys.partition_point(|k| k <= hi);
        for i in first..=last {
            if !self.range_rec(node.children[i], lo, hi, f) {
                return false;
            }
        }
        true
    }

    /// Insert; returns the previous value if the key was present.
    /// `O(log_B n)` I/Os (plus splits).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let root = self.root;
        match self.insert_rec(root, key, value) {
            InsertResult::Replaced(v) => Some(v),
            InsertResult::Done => {
                self.len += 1;
                None
            }
            InsertResult::Split(sep, right) => {
                let new_root = self.alloc(Node {
                    keys: vec![sep],
                    vals: Vec::new(),
                    children: vec![root, right],
                });
                self.model.charge_writes(1);
                self.root = new_root;
                self.len += 1;
                None
            }
        }
    }

    fn insert_rec(&mut self, u: usize, key: K, value: V) -> InsertResult<K, V> {
        self.touch(u);
        if self.nodes[u].is_leaf() {
            match self.nodes[u].keys.binary_search(&key) {
                Ok(i) => {
                    let old = std::mem::replace(&mut self.nodes[u].vals[i], value);
                    return InsertResult::Replaced(old);
                }
                Err(i) => {
                    self.nodes[u].keys.insert(i, key);
                    self.nodes[u].vals.insert(i, value);
                    self.model.charge_writes(1);
                }
            }
            if self.nodes[u].keys.len() > self.fanout {
                let mid = self.nodes[u].keys.len() / 2;
                let rkeys = self.nodes[u].keys.split_off(mid);
                let rvals = self.nodes[u].vals.split_off(mid);
                let sep = rkeys[0].clone();
                let right = self.alloc(Node {
                    keys: rkeys,
                    vals: rvals,
                    children: Vec::new(),
                });
                self.model.charge_writes(2);
                return InsertResult::Split(sep, right);
            }
            return InsertResult::Done;
        }
        let i = self.nodes[u].keys.partition_point(|k| k <= &key);
        let child = self.nodes[u].children[i];
        match self.insert_rec(child, key, value) {
            InsertResult::Split(sep, right) => {
                self.nodes[u].keys.insert(i, sep);
                self.nodes[u].children.insert(i + 1, right);
                self.model.charge_writes(1);
                if self.nodes[u].children.len() > self.fanout {
                    let midc = self.nodes[u].children.len() / 2;
                    let rchildren = self.nodes[u].children.split_off(midc);
                    let rkeys = self.nodes[u].keys.split_off(midc);
                    // keys now has midc-1 separators; the last one moves up.
                    let sep = self.nodes[u].keys.pop().expect("separator");
                    let right = self.alloc(Node {
                        keys: rkeys,
                        vals: Vec::new(),
                        children: rchildren,
                    });
                    self.model.charge_writes(2);
                    return InsertResult::Split(sep, right);
                }
                InsertResult::Done
            }
            other => other,
        }
    }

    /// Delete; returns the removed value. `O(log_B n)` I/Os (plus merges).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let root = self.root;
        let removed = self.remove_rec(root, key);
        if removed.is_some() {
            self.len -= 1;
            // Shrink the root if it became a trivial internal node.
            if !self.nodes[self.root].is_leaf() && self.nodes[self.root].children.len() == 1 {
                let only = self.nodes[self.root].children[0];
                self.free.push(self.root);
                self.root = only;
            }
        }
        removed
    }

    fn remove_rec(&mut self, u: usize, key: &K) -> Option<V> {
        self.touch(u);
        if self.nodes[u].is_leaf() {
            return match self.nodes[u].keys.binary_search(key) {
                Ok(i) => {
                    self.nodes[u].keys.remove(i);
                    self.model.charge_writes(1);
                    Some(self.nodes[u].vals.remove(i))
                }
                Err(_) => None,
            };
        }
        let i = self.nodes[u].keys.partition_point(|k| k <= key);
        let child = self.nodes[u].children[i];
        let removed = self.remove_rec(child, key)?;
        self.rebalance_child(u, i);
        Some(removed)
    }

    /// Fix up child `i` of internal node `u` if it fell below minimum fill.
    fn rebalance_child(&mut self, u: usize, i: usize) {
        let child = self.nodes[u].children[i];
        let min = self.min_fill();
        let size = if self.nodes[child].is_leaf() {
            self.nodes[child].keys.len()
        } else {
            self.nodes[child].children.len()
        };
        if size >= min {
            return;
        }
        // Try borrowing from a sibling, else merge.
        if i > 0 {
            let left = self.nodes[u].children[i - 1];
            self.touch(left);
            let lsize = if self.nodes[left].is_leaf() {
                self.nodes[left].keys.len()
            } else {
                self.nodes[left].children.len()
            };
            if lsize > min {
                self.borrow_from_left(u, i);
                return;
            }
            self.merge_children(u, i - 1);
            return;
        }
        let right = self.nodes[u].children[i + 1];
        self.touch(right);
        let rsize = if self.nodes[right].is_leaf() {
            self.nodes[right].keys.len()
        } else {
            self.nodes[right].children.len()
        };
        if rsize > min {
            self.borrow_from_right(u, i);
            return;
        }
        self.merge_children(u, i);
    }

    fn borrow_from_left(&mut self, u: usize, i: usize) {
        let left = self.nodes[u].children[i - 1];
        let child = self.nodes[u].children[i];
        self.model.charge_writes(3);
        if self.nodes[child].is_leaf() {
            // Invariant: rebalance_child only borrows when the left sibling
            // holds > min_fill ≥ 2 keys, so the donor leaf cannot be empty.
            let k = self.nodes[left]
                .keys
                .pop()
                .expect("donor leaf has > min_fill keys");
            let v = self.nodes[left]
                .vals
                .pop()
                .expect("leaf vals stay aligned with keys");
            self.nodes[u].keys[i - 1] = k.clone();
            self.nodes[child].keys.insert(0, k);
            self.nodes[child].vals.insert(0, v);
        } else {
            // Invariant: an internal donor with > min_fill ≥ 2 children has
            // ≥ 3 children and children.len()-1 ≥ 2 separator keys.
            let c = self.nodes[left]
                .children
                .pop()
                .expect("donor internal node has > min_fill children");
            let k = self.nodes[left]
                .keys
                .pop()
                .expect("internal node keeps children.len()-1 separators");
            let sep = std::mem::replace(&mut self.nodes[u].keys[i - 1], k);
            self.nodes[child].keys.insert(0, sep);
            self.nodes[child].children.insert(0, c);
        }
    }

    fn borrow_from_right(&mut self, u: usize, i: usize) {
        let right = self.nodes[u].children[i + 1];
        let child = self.nodes[u].children[i];
        self.model.charge_writes(3);
        if self.nodes[child].is_leaf() {
            let k = self.nodes[right].keys.remove(0);
            let v = self.nodes[right].vals.remove(0);
            self.nodes[child].keys.push(k);
            self.nodes[child].vals.push(v);
            self.nodes[u].keys[i] = self.nodes[right].keys[0].clone();
        } else {
            let c = self.nodes[right].children.remove(0);
            let k = self.nodes[right].keys.remove(0);
            let sep = std::mem::replace(&mut self.nodes[u].keys[i], k);
            self.nodes[child].keys.push(sep);
            self.nodes[child].children.push(c);
        }
    }

    /// Merge children `i` and `i+1` of node `u`.
    fn merge_children(&mut self, u: usize, i: usize) {
        let left = self.nodes[u].children[i];
        let right = self.nodes[u].children[i + 1];
        self.model.charge_writes(2);
        let sep = self.nodes[u].keys.remove(i);
        self.nodes[u].children.remove(i + 1);
        let mut rnode = std::mem::replace(
            &mut self.nodes[right],
            Node {
                keys: Vec::new(),
                vals: Vec::new(),
                children: Vec::new(),
            },
        );
        self.free.push(right);
        if self.nodes[left].is_leaf() {
            self.nodes[left].keys.append(&mut rnode.keys);
            self.nodes[left].vals.append(&mut rnode.vals);
        } else {
            self.nodes[left].keys.push(sep);
            self.nodes[left].keys.append(&mut rnode.keys);
            self.nodes[left].children.append(&mut rnode.children);
        }
    }

    /// Verify node `node`'s checksum against what the device reads back.
    /// A mismatch (silent corruption injected by the meter's fault plan) is
    /// recorded on the meter and surfaced as [`EmError::Corrupt`].
    pub fn verify(&self, node: u64) -> Result<(), EmError> {
        let stored = self.checksums[node as usize];
        let plan = self.model.fault_plan();
        let read_back = if plan.is_corrupted(self.array_id, node) {
            stored ^ plan.corruption_mask(self.array_id, node)
        } else {
            stored
        };
        if read_back != stored {
            self.model.record_fault();
            return Err(EmError::Corrupt {
                array_id: self.array_id,
                block: node,
            });
        }
        Ok(())
    }

    /// Read one node fallibly: retry transient faults under `retrier`, then
    /// verify the node checksum.
    fn try_touch_node(&self, node: usize, retrier: &Retrier) -> Result<(), EmError> {
        retrier.run(|attempt| self.model.try_fetch(self.array_id, node as u64, attempt))?;
        self.verify(node as u64)
    }

    /// Fallible [`BTree::get`]: point lookup under the meter's fault plan,
    /// retrying transient faults with `retrier`. A root-to-leaf path that
    /// stays unreadable after retries surfaces as `Err`.
    pub fn try_search(&self, key: &K, retrier: &Retrier) -> Result<Option<&V>, EmError> {
        let mut u = self.root;
        loop {
            self.try_touch_node(u, retrier)?;
            let node = &self.nodes[u];
            if node.is_leaf() {
                return Ok(match node.keys.binary_search(key) {
                    Ok(i) => Some(&node.vals[i]),
                    Err(_) => None,
                });
            }
            let i = node.keys.partition_point(|k| k <= key);
            u = node.children[i];
        }
    }

    /// Fallible [`BTree::range_while`]: in-order reporting that stops at
    /// the first subtree whose root stays unreadable after retries. Pairs
    /// already delivered to `f` remain valid — callers can degrade to the
    /// partial prefix.
    pub fn try_range_while(
        &self,
        lo: &K,
        hi: &K,
        retrier: &Retrier,
        mut f: impl FnMut(&K, &V) -> bool,
    ) -> Result<(), EmError> {
        if self.len == 0 || lo > hi {
            return Ok(());
        }
        self.try_range_rec(self.root, lo, hi, retrier, &mut f)
            .map(|_| ())
    }

    /// `Ok(true)` to keep reporting, `Ok(false)` when `f` stopped the scan.
    fn try_range_rec(
        &self,
        u: usize,
        lo: &K,
        hi: &K,
        retrier: &Retrier,
        f: &mut impl FnMut(&K, &V) -> bool,
    ) -> Result<bool, EmError> {
        self.try_touch_node(u, retrier)?;
        let node = &self.nodes[u];
        if node.is_leaf() {
            let start = node.keys.partition_point(|k| k < lo);
            for i in start..node.keys.len() {
                if node.keys[i] > *hi || !f(&node.keys[i], &node.vals[i]) {
                    return Ok(false);
                }
            }
            return Ok(true);
        }
        let first = node.keys.partition_point(|k| k <= lo);
        let last = node.keys.partition_point(|k| k <= hi);
        for i in first..=last {
            if !self.try_range_rec(node.children[i], lo, hi, retrier, f)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Check structural invariants (fill factors, key ordering, child counts).
    /// Used by tests; O(n), charges nothing.
    pub fn check_invariants(&self) {
        let mut count = 0;
        self.check_rec(self.root, None, None, true, &mut count);
        assert_eq!(count, self.len, "len mismatch");
    }

    fn check_rec(
        &self,
        u: usize,
        lo: Option<&K>,
        hi: Option<&K>,
        is_root: bool,
        count: &mut usize,
    ) {
        let node = &self.nodes[u];
        for w in node.keys.windows(2) {
            assert!(w[0] < w[1], "keys out of order");
        }
        if let Some(lo) = lo {
            if let Some(first) = node.keys.first() {
                assert!(first >= lo, "key below subtree lower bound");
            }
        }
        if let Some(hi) = hi {
            if let Some(last) = node.keys.last() {
                assert!(last < hi, "key at/above subtree upper bound");
            }
        }
        if node.is_leaf() {
            assert_eq!(node.keys.len(), node.vals.len());
            if !is_root {
                assert!(node.keys.len() >= self.min_fill().min(1), "underfull leaf");
            }
            assert!(node.keys.len() <= self.fanout + 1, "overfull leaf");
            *count += node.keys.len();
        } else {
            assert_eq!(node.children.len(), node.keys.len() + 1);
            if is_root {
                assert!(node.children.len() >= 2, "trivial root");
            } else {
                assert!(node.children.len() >= self.min_fill(), "underfull internal");
            }
            assert!(node.children.len() <= self.fanout + 1, "overfull internal");
            for (i, &c) in node.children.iter().enumerate() {
                let clo = if i == 0 { lo } else { Some(&node.keys[i - 1]) };
                let chi = if i == node.keys.len() {
                    hi
                } else {
                    Some(&node.keys[i])
                };
                self.check_rec(c, clo, chi, false, count);
            }
        }
    }
}

enum InsertResult<K, V> {
    Done,
    Replaced(V),
    Split(K, usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EmConfig;

    fn model(b: usize) -> CostModel {
        CostModel::new(EmConfig::new(b))
    }

    #[test]
    fn bulk_build_and_get() {
        let m = model(64);
        let pairs: Vec<(u64, u64)> = (0..10_000).map(|i| (i * 2, i)).collect();
        let t = BTree::from_sorted(&m, pairs);
        t.check_invariants();
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.get(&0), Some(&0));
        assert_eq!(t.get(&19_998), Some(&9_999));
        assert_eq!(t.get(&3), None);
    }

    #[test]
    fn search_cost_is_logarithmic_in_b() {
        let m = model(64);
        let pairs: Vec<(u64, u64)> = (0..100_000u64).map(|i| (i, i)).collect();
        let t = BTree::from_sorted(&m, pairs);
        m.reset();
        t.get(&54_321);
        // fanout ≈ 32 for (u64,u64) at B=64 words; height should be ≤ 4.
        assert!(m.report().reads <= 5, "reads = {}", m.report().reads);
    }

    #[test]
    fn range_reports_in_order() {
        let m = model(64);
        let pairs: Vec<(u64, u64)> = (0..5_000u64).map(|i| (i * 3, i)).collect();
        let t = BTree::from_sorted(&m, pairs);
        let mut out = Vec::new();
        t.range(&100, &200, &mut out);
        let expected: Vec<(u64, u64)> = (0..5_000u64)
            .map(|i| (i * 3, i))
            .filter(|&(k, _)| (100..=200).contains(&k))
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn range_while_stops_early() {
        let m = model(64);
        let pairs: Vec<(u64, u64)> = (0..5_000u64).map(|i| (i, i)).collect();
        let t = BTree::from_sorted(&m, pairs);
        let mut seen = 0;
        t.range_while(&0, &4_999, |_, _| {
            seen += 1;
            seen < 10
        });
        assert_eq!(seen, 10);
    }

    #[test]
    fn insert_then_get_everything() {
        let m = model(64);
        let mut t: BTree<u64, u64> = BTree::new(&m);
        // Insert in a scrambled order.
        let mut keys: Vec<u64> = (0..3_000).collect();
        let mut x = 9u64;
        for i in (1..keys.len()).rev() {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            keys.swap(i, (x % (i as u64 + 1)) as usize);
        }
        for &k in &keys {
            assert_eq!(t.insert(k, k * 10), None);
        }
        t.check_invariants();
        assert_eq!(t.len(), 3_000);
        for k in 0..3_000u64 {
            assert_eq!(t.get(&k), Some(&(k * 10)));
        }
        // Replacement returns old value.
        assert_eq!(t.insert(5, 999), Some(50));
        assert_eq!(t.len(), 3_000);
    }

    #[test]
    fn delete_everything_in_random_order() {
        let m = model(64);
        let pairs: Vec<(u64, u64)> = (0..2_000u64).map(|i| (i, i)).collect();
        let mut t = BTree::from_sorted(&m, pairs);
        let mut keys: Vec<u64> = (0..2_000).collect();
        let mut x = 77u64;
        for i in (1..keys.len()).rev() {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            keys.swap(i, (x % (i as u64 + 1)) as usize);
        }
        for (step, &k) in keys.iter().enumerate() {
            assert_eq!(t.remove(&k), Some(k), "step {step}");
            if step % 97 == 0 {
                t.check_invariants();
            }
        }
        assert!(t.is_empty());
        assert_eq!(t.remove(&5), None);
    }

    #[test]
    fn mixed_workload_matches_std_btreemap() {
        use std::collections::BTreeMap;
        let m = model(16);
        let mut t: BTree<u32, u32> = BTree::new(&m);
        let mut reference = BTreeMap::new();
        let mut x = 42u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            let key = ((x >> 32) % 500) as u32;
            match x % 3 {
                0 => {
                    assert_eq!(t.insert(key, key), reference.insert(key, key));
                }
                1 => {
                    assert_eq!(t.remove(&key), reference.remove(&key));
                }
                _ => {
                    assert_eq!(t.get(&key), reference.get(&key));
                }
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), reference.len());
        let mut out = Vec::new();
        t.range(&0, &500, &mut out);
        let expected: Vec<(u32, u32)> = reference.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_tree_operations() {
        let m = model(64);
        let mut t: BTree<u64, u64> = BTree::new(&m);
        assert_eq!(t.get(&1), None);
        assert_eq!(t.remove(&1), None);
        let mut out = Vec::new();
        t.range(&0, &100, &mut out);
        assert!(out.is_empty());
        t.check_invariants();
    }

    #[test]
    fn from_sorted_rejects_duplicates() {
        let m = model(64);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            BTree::from_sorted(&m, vec![(1u64, 1u64), (1, 2)]);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn single_item_tree() {
        let m = model(64);
        let t = BTree::from_sorted(&m, vec![(7u64, 70u64)]);
        t.check_invariants();
        assert_eq!(t.get(&7), Some(&70));
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn randomized_interleaving_at_minimum_fanout() {
        // Fanout is clamped to its minimum of 4 (B=1 word), so every insert
        // splits early and every delete immediately exercises the
        // borrow-from-left / borrow-from-right / merge paths the documented
        // expects guard. Checked against std::BTreeMap at every step.
        use std::collections::BTreeMap;
        let m = model(1);
        let mut t: BTree<u32, u32> = BTree::new(&m);
        assert_eq!(t.fanout, 4, "B=1 word clamps fanout to the minimum");
        let mut reference = BTreeMap::new();
        let mut x = 0xDE_C0DEu64;
        for round in 0..50_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            let key = ((x >> 33) % 120) as u32;
            // Bias phases: mostly inserts early, mostly deletes late, so the
            // tree repeatedly grows through splits and drains through
            // borrows/merges all the way back to a root leaf.
            let grow = (round / 5_000) % 2 == 0;
            let op = x % 10;
            if (grow && op < 6) || (!grow && op < 2) {
                assert_eq!(t.insert(key, key ^ 1), reference.insert(key, key ^ 1));
            } else if op < 8 {
                assert_eq!(t.remove(&key), reference.remove(&key), "round {round}");
            } else {
                assert_eq!(t.get(&key), reference.get(&key));
            }
            if round % 1_000 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), reference.len());
        // Drain completely: the deepest rebalance cascades happen here.
        let keys: Vec<u32> = reference.keys().copied().collect();
        for k in keys {
            assert_eq!(t.remove(&k), reference.remove(&k));
            t.check_invariants();
        }
        assert!(t.is_empty());
    }

    use crate::fault::{FaultPlan, Retrier};

    #[test]
    fn try_search_matches_get_under_inert_plan() {
        let m = CostModel::with_faults(EmConfig::new(64), FaultPlan::none());
        let pairs: Vec<(u64, u64)> = (0..5_000u64).map(|i| (i * 2, i)).collect();
        let t = BTree::from_sorted(&m, pairs);
        let r = Retrier::default();
        for probe in [0u64, 2, 3, 4_444, 9_998, 10_000] {
            assert_eq!(t.try_search(&probe, &r).unwrap(), t.get(&probe));
        }
        assert_eq!(m.report().faults, 0);
    }

    #[test]
    fn try_search_survives_transient_faults() {
        let m = CostModel::with_faults(
            EmConfig::new(64),
            FaultPlan::new(13).with_transient(0.4),
        );
        let pairs: Vec<(u64, u64)> = (0..5_000u64).map(|i| (i, i)).collect();
        let t = BTree::from_sorted(&m, pairs);
        m.reset();
        let r = Retrier::new(20); // residual failure ~ 0.4^21 per node
        for probe in (0..5_000u64).step_by(97) {
            assert_eq!(t.try_search(&probe, &r).unwrap(), Some(&probe));
        }
        let rep = m.report();
        assert!(rep.faults > 0, "rate 0.4 across many probes must fault");
        assert!(rep.reads > rep.faults, "successful reads outnumber none");
    }

    #[test]
    fn try_search_reports_bad_nodes() {
        // Every node permanently unreadable: the very first root touch
        // fails with a non-transient error, never a panic or wrong answer.
        let m = CostModel::with_faults(
            EmConfig::new(64),
            FaultPlan::new(2).with_permanent(1.0),
        );
        let pairs: Vec<(u64, u64)> = (0..1_000u64).map(|i| (i, i)).collect();
        let t = BTree::from_sorted(&m, pairs);
        let e = t.try_search(&5, &Retrier::new(3)).unwrap_err();
        assert!(matches!(e, EmError::BadBlock { .. }));
    }

    #[test]
    fn try_range_while_degrades_to_prefix_on_corruption() {
        // Corrupt everything: the root itself is detected as corrupt, so
        // the report delivers nothing but errors out cleanly; under an
        // inert plan the same call reproduces range_while exactly.
        let m = CostModel::with_faults(EmConfig::new(64), FaultPlan::new(4).with_corrupt(1.0));
        let pairs: Vec<(u64, u64)> = (0..2_000u64).map(|i| (i, i)).collect();
        let t = BTree::from_sorted(&m, pairs);
        let r = Retrier::default();
        let mut seen = Vec::new();
        let e = t
            .try_range_while(&0, &1_999, &r, |&k, _| {
                seen.push(k);
                true
            })
            .unwrap_err();
        assert!(matches!(e, EmError::Corrupt { .. }));
        m.set_fault_plan(FaultPlan::none());
        let mut clean = Vec::new();
        t.try_range_while(&100, &200, &r, |&k, _| {
            clean.push(k);
            true
        })
        .unwrap();
        assert_eq!(clean, (100..=200).collect::<Vec<u64>>());
    }
}
