//! [`BlockArray`]: a typed array laid out in disk blocks.
//!
//! This is the basic storage primitive of the simulated EM machine: items
//! are packed `⌊B / words(T)⌉` per block and every access charges the
//! [`CostModel`] per distinct block touched. Sequential scans therefore cost
//! `O(n/B)` I/Os and random probes cost one I/O each (modulo buffer-pool
//! hits), matching the model of §1.1.

use crate::cost::CostModel;
use crate::error::EmError;
use crate::fault::{self, Retrier};

/// The checksum stored alongside block `block` of array `array_id` when it
/// holds `items` items. The sentinel is a pure function of the block's
/// address (the payload itself lives in a native `Vec`, which the simulator
/// never physically scrambles); an injected corruption XORs a nonzero mask
/// into the value read back, so verification fails exactly on the blocks
/// the [`crate::FaultPlan`] corrupted.
fn block_checksum(array_id: u64, block: u64, items: u64) -> u64 {
    fault::mix(fault::mix(array_id ^ 0xC0DE_C0DE) ^ fault::mix(block) ^ items)
}

/// A typed array stored in blocks of the simulated disk.
///
/// Every block carries a checksum written at construction time; the `try_*`
/// accessors re-verify it after each successful read, so silent corruption
/// injected by the meter's [`crate::FaultPlan`] surfaces as
/// [`EmError::Corrupt`] instead of wrong answers.
#[derive(Debug)]
pub struct BlockArray<T> {
    data: Vec<T>,
    per_block: usize,
    array_id: u64,
    model: CostModel,
    /// Per-block checksums, written when the array is laid out.
    checksums: Vec<u64>,
}

impl<T> BlockArray<T> {
    /// Store `data` on disk, charging the writes needed to lay it out.
    pub fn new(model: &CostModel, data: Vec<T>) -> Self {
        let per_block = model.config().items_per_block::<T>();
        let blocks = data.len().div_ceil(per_block);
        model.charge_writes(blocks as u64);
        let array_id = model.new_array_id();
        let checksums = (0..blocks as u64)
            .map(|b| {
                let lo = b as usize * per_block;
                let items = (data.len() - lo).min(per_block) as u64;
                block_checksum(array_id, b, items)
            })
            .collect();
        BlockArray {
            data,
            per_block,
            array_id,
            model: model.clone(),
            checksums,
        }
    }

    /// Number of items stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Items per block for this array's element type.
    pub fn items_per_block(&self) -> usize {
        self.per_block
    }

    /// Number of blocks occupied — the array's *space* in the EM model.
    pub fn blocks(&self) -> u64 {
        self.data.len().div_ceil(self.per_block) as u64
    }

    /// Random access to item `i`: charges the block containing `i`.
    pub fn get(&self, i: usize) -> &T {
        self.model.touch(self.array_id, (i / self.per_block) as u64);
        &self.data[i]
    }

    /// Read items `[lo, hi)` sequentially, charging each block in the range
    /// once, and call `f` on each item.
    pub fn scan_range(&self, lo: usize, hi: usize, mut f: impl FnMut(&T)) {
        assert!(lo <= hi && hi <= self.data.len(), "scan range out of bounds");
        if lo == hi {
            return;
        }
        let first_block = lo / self.per_block;
        let last_block = (hi - 1) / self.per_block;
        for b in first_block..=last_block {
            self.model.touch(self.array_id, b as u64);
        }
        for item in &self.data[lo..hi] {
            f(item);
        }
    }

    /// Scan the whole array.
    pub fn scan(&self, f: impl FnMut(&T)) {
        self.scan_range(0, self.data.len(), f);
    }

    /// Scan `[lo, hi)` but stop early when `f` returns `false`. Blocks are
    /// charged lazily, only as the scan reaches them. Returns the number of
    /// items visited.
    pub fn scan_while(&self, lo: usize, hi: usize, mut f: impl FnMut(&T) -> bool) -> usize {
        assert!(lo <= hi && hi <= self.data.len(), "scan range out of bounds");
        let mut visited = 0;
        let mut current_block = usize::MAX;
        for i in lo..hi {
            let b = i / self.per_block;
            if b != current_block {
                self.model.touch(self.array_id, b as u64);
                current_block = b;
            }
            visited += 1;
            if !f(&self.data[i]) {
                break;
            }
        }
        visited
    }

    /// Binary search by a key extractor over an array sorted by that key.
    /// Charges one I/O per probe, i.e. `O(log₂(n/B))`-ish with a pool, or
    /// `O(log₂ n)` probes without. (B-tree search in [`crate::BTree`] gives
    /// the `O(log_B n)` bound when that matters.)
    pub fn partition_point(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        let mut lo = 0usize;
        let mut hi = self.data.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.model.touch(self.array_id, (mid / self.per_block) as u64);
            if pred(&self.data[mid]) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Direct slice access **without charging I/Os**. For use by tests and
    /// by build-time code that has already accounted for its passes.
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Verify block `block`'s checksum against what the device reads back.
    /// A mismatch (silent corruption injected by the meter's fault plan) is
    /// recorded on the meter and surfaced as [`EmError::Corrupt`].
    pub fn verify(&self, block: u64) -> Result<(), EmError> {
        let stored = self.checksums[block as usize];
        let plan = self.model.fault_plan();
        let read_back = if plan.is_corrupted(self.array_id, block) {
            stored ^ plan.corruption_mask(self.array_id, block)
        } else {
            stored
        };
        if read_back != stored {
            self.model.record_fault();
            return Err(EmError::Corrupt {
                array_id: self.array_id,
                block,
            });
        }
        Ok(())
    }

    /// Read one block fallibly: retry transient faults under `retrier`
    /// (each attempt charges one read I/O on a pool miss), then verify the
    /// checksum.
    fn try_read_block(&self, block: u64, retrier: &Retrier) -> Result<(), EmError> {
        retrier.run(|attempt| self.model.try_touch(self.array_id, block, attempt))?;
        self.verify(block)
    }

    /// Fallible [`BlockArray::get`]: random access to item `i` under the
    /// meter's fault plan, retrying transient faults with `retrier`.
    pub fn try_get(&self, i: usize, retrier: &Retrier) -> Result<&T, EmError> {
        self.try_read_block((i / self.per_block) as u64, retrier)?;
        Ok(&self.data[i])
    }

    /// Fallible [`BlockArray::scan_range`]: read `[lo, hi)` sequentially,
    /// stopping at the first block that stays unreadable after retries.
    pub fn try_scan_range(
        &self,
        lo: usize,
        hi: usize,
        retrier: &Retrier,
        mut f: impl FnMut(&T),
    ) -> Result<(), EmError> {
        self.try_scan_while(lo, hi, retrier, |item| {
            f(item);
            true
        })
        .map(|_| ())
        .map_err(|(_, e)| e)
    }

    /// Fallible [`BlockArray::scan_while`]: scan `[lo, hi)` until `f`
    /// returns `false`, a fault survives its retries, or the range ends.
    ///
    /// Returns the number of items visited; on error, the pair of (items
    /// visited before the failing block, error) — the partial prefix is the
    /// raw material of graceful degradation, so callers can still answer
    /// from whatever was read.
    pub fn try_scan_while(
        &self,
        lo: usize,
        hi: usize,
        retrier: &Retrier,
        mut f: impl FnMut(&T) -> bool,
    ) -> Result<usize, (usize, EmError)> {
        assert!(lo <= hi && hi <= self.data.len(), "scan range out of bounds");
        let mut visited = 0;
        let mut current_block = u64::MAX;
        for i in lo..hi {
            let b = (i / self.per_block) as u64;
            if b != current_block {
                self.try_read_block(b, retrier).map_err(|e| (visited, e))?;
                current_block = b;
            }
            visited += 1;
            if !f(&self.data[i]) {
                break;
            }
        }
        Ok(visited)
    }

    /// Fallible [`BlockArray::partition_point`]: binary search under the
    /// fault plan. An unreadable probe block aborts the search — a binary
    /// search cannot route around a missing pivot.
    pub fn try_partition_point(
        &self,
        retrier: &Retrier,
        mut pred: impl FnMut(&T) -> bool,
    ) -> Result<usize, EmError> {
        let mut lo = 0usize;
        let mut hi = self.data.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.try_read_block((mid / self.per_block) as u64, retrier)?;
            if pred(&self.data[mid]) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EmConfig;

    fn model64() -> CostModel {
        CostModel::new(EmConfig::new(64))
    }

    #[test]
    fn build_charges_writes() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..130).collect());
        assert_eq!(a.blocks(), 3);
        assert_eq!(m.report().writes, 3);
        assert_eq!(m.report().reads, 0);
    }

    #[test]
    fn full_scan_costs_ceil_n_over_b() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..1000).collect());
        m.reset();
        let mut sum = 0u64;
        a.scan(|x| sum += x);
        assert_eq!(sum, 999 * 1000 / 2);
        assert_eq!(m.report().reads, 1000u64.div_ceil(64));
    }

    #[test]
    fn range_scan_charges_only_touched_blocks() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..640).collect());
        m.reset();
        let mut cnt = 0;
        a.scan_range(60, 70, |_| cnt += 1); // straddles blocks 0 and 1
        assert_eq!(cnt, 10);
        assert_eq!(m.report().reads, 2);
    }

    #[test]
    fn scan_while_stops_early_and_charges_lazily() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..6400).collect());
        m.reset();
        let visited = a.scan_while(0, 6400, |&x| x < 10);
        assert_eq!(visited, 11); // 0..=10, stopping at 10
        assert_eq!(m.report().reads, 1);
    }

    #[test]
    fn partition_point_agrees_with_slice() {
        let m = model64();
        let v: Vec<u64> = (0..977).map(|i| i * 3).collect();
        let a = BlockArray::new(&m, v.clone());
        for probe in [0u64, 1, 2, 3, 1000, 2927, 2928, 5000] {
            assert_eq!(
                a.partition_point(|&x| x < probe),
                v.partition_point(|&x| x < probe)
            );
        }
    }

    #[test]
    fn get_charges_one_io_per_block() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..256).collect());
        m.reset();
        assert_eq!(*a.get(0), 0);
        assert_eq!(*a.get(63), 63); // same block, but no pool: still 1 I/O
        assert_eq!(*a.get(64), 64);
        assert_eq!(m.report().reads, 3);
    }

    #[test]
    fn pool_makes_repeat_gets_free() {
        let m = CostModel::new(EmConfig::with_memory(64, 8));
        let a = BlockArray::new(&m, (0u64..256).collect());
        m.reset();
        a.get(0);
        a.get(1);
        a.get(63);
        assert_eq!(m.report().reads, 1);
    }

    #[test]
    fn empty_scan_is_free() {
        let m = model64();
        let a: BlockArray<u64> = BlockArray::new(&m, vec![]);
        m.reset();
        a.scan(|_| panic!("no items"));
        assert_eq!(m.report().reads, 0);
        assert!(a.is_empty());
    }

    use crate::fault::{FaultPlan, Retrier};

    fn faulty_model(plan: FaultPlan) -> CostModel {
        CostModel::with_faults(EmConfig::new(64), plan)
    }

    #[test]
    fn try_accessors_match_infallible_under_inert_plan() {
        let m = faulty_model(FaultPlan::none());
        let a = BlockArray::new(&m, (0u64..500).collect());
        m.reset();
        let r = Retrier::default();
        assert_eq!(a.try_get(123, &r).copied(), Ok(123));
        let mut sum = 0u64;
        a.try_scan_range(0, 500, &r, |&x| sum += x).unwrap();
        assert_eq!(sum, 499 * 500 / 2);
        assert_eq!(
            a.try_partition_point(&r, |&x| x < 250),
            Ok(250)
        );
        assert_eq!(m.report().faults, 0);
    }

    #[test]
    fn transient_faults_are_retried_and_charged() {
        let m = faulty_model(FaultPlan::new(21).with_transient(0.5));
        let a = BlockArray::new(&m, (0u64..6400).collect());
        m.reset();
        // A generous budget makes full-scan success overwhelmingly likely
        // (100 blocks × 2^-12 residual failure probability).
        let r = Retrier::new(11);
        let mut cnt = 0usize;
        a.try_scan_range(0, 6400, &r, |_| cnt += 1).unwrap();
        assert_eq!(cnt, 6400);
        let rep = m.report();
        assert_eq!(rep.faults as i64, rep.reads as i64 - 100,
            "every read beyond the 100 payload blocks was a charged, retried failure");
        assert!(rep.faults > 0, "rate 0.5 over 100 blocks must fault somewhere");
    }

    #[test]
    fn bad_blocks_surface_with_partial_progress() {
        let m = faulty_model(FaultPlan::new(8).with_permanent(0.2));
        let a = BlockArray::new(&m, (0u64..6400).collect());
        let r = Retrier::new(3);
        match a.try_scan_while(0, 6400, &r, |_| true) {
            Ok(n) => {
                // No bad block in this array's id-universe: all visited.
                assert_eq!(n, 6400);
            }
            Err((visited, e)) => {
                assert!(!e.is_transient());
                // The prefix before the failing block was fully delivered.
                assert_eq!(visited % 64, 0, "failed at a block boundary");
                let (_, block) = e.location();
                assert_eq!(visited, block as usize * 64);
            }
        }
    }

    #[test]
    fn corruption_is_detected_not_returned() {
        // Corrupt every block: every try access must report Corrupt, never
        // hand back data, and the meter must count the detections.
        let m = faulty_model(FaultPlan::new(3).with_corrupt(1.0));
        let a = BlockArray::new(&m, (0u64..64).collect());
        m.reset();
        let r = Retrier::default();
        let e = a.try_get(0, &r).unwrap_err();
        assert!(matches!(e, EmError::Corrupt { .. }));
        assert_eq!(m.report().faults, 1);
        assert!(a.try_scan_range(0, 64, &r, |_| ()).is_err());
        // The infallible path still reads "successfully" — corruption is
        // silent by definition and only checksums catch it.
        assert_eq!(*a.get(5), 5);
    }

    #[test]
    fn verify_passes_on_clean_blocks() {
        let m = faulty_model(FaultPlan::none());
        let a = BlockArray::new(&m, (0u64..200).collect());
        for b in 0..a.blocks() {
            assert_eq!(a.verify(b), Ok(()));
        }
    }
}
