//! [`BlockArray`]: a typed array laid out in disk blocks.
//!
//! This is the basic storage primitive of the simulated EM machine: items
//! are packed `⌊B / words(T)⌉` per block and every access charges the
//! [`CostModel`] per distinct block touched. Sequential scans therefore cost
//! `O(n/B)` I/Os and random probes cost one I/O each (modulo buffer-pool
//! hits), matching the model of §1.1.

use crate::cost::CostModel;

/// A typed array stored in blocks of the simulated disk.
#[derive(Debug)]
pub struct BlockArray<T> {
    data: Vec<T>,
    per_block: usize,
    array_id: u64,
    model: CostModel,
}

impl<T> BlockArray<T> {
    /// Store `data` on disk, charging the writes needed to lay it out.
    pub fn new(model: &CostModel, data: Vec<T>) -> Self {
        let per_block = model.config().items_per_block::<T>();
        let blocks = data.len().div_ceil(per_block) as u64;
        model.charge_writes(blocks);
        BlockArray {
            data,
            per_block,
            array_id: model.new_array_id(),
            model: model.clone(),
        }
    }

    /// Number of items stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Items per block for this array's element type.
    pub fn items_per_block(&self) -> usize {
        self.per_block
    }

    /// Number of blocks occupied — the array's *space* in the EM model.
    pub fn blocks(&self) -> u64 {
        self.data.len().div_ceil(self.per_block) as u64
    }

    /// Random access to item `i`: charges the block containing `i`.
    pub fn get(&self, i: usize) -> &T {
        self.model.touch(self.array_id, (i / self.per_block) as u64);
        &self.data[i]
    }

    /// Read items `[lo, hi)` sequentially, charging each block in the range
    /// once, and call `f` on each item.
    pub fn scan_range(&self, lo: usize, hi: usize, mut f: impl FnMut(&T)) {
        assert!(lo <= hi && hi <= self.data.len(), "scan range out of bounds");
        if lo == hi {
            return;
        }
        let first_block = lo / self.per_block;
        let last_block = (hi - 1) / self.per_block;
        for b in first_block..=last_block {
            self.model.touch(self.array_id, b as u64);
        }
        for item in &self.data[lo..hi] {
            f(item);
        }
    }

    /// Scan the whole array.
    pub fn scan(&self, f: impl FnMut(&T)) {
        self.scan_range(0, self.data.len(), f);
    }

    /// Scan `[lo, hi)` but stop early when `f` returns `false`. Blocks are
    /// charged lazily, only as the scan reaches them. Returns the number of
    /// items visited.
    pub fn scan_while(&self, lo: usize, hi: usize, mut f: impl FnMut(&T) -> bool) -> usize {
        assert!(lo <= hi && hi <= self.data.len(), "scan range out of bounds");
        let mut visited = 0;
        let mut current_block = usize::MAX;
        for i in lo..hi {
            let b = i / self.per_block;
            if b != current_block {
                self.model.touch(self.array_id, b as u64);
                current_block = b;
            }
            visited += 1;
            if !f(&self.data[i]) {
                break;
            }
        }
        visited
    }

    /// Binary search by a key extractor over an array sorted by that key.
    /// Charges one I/O per probe, i.e. `O(log₂(n/B))`-ish with a pool, or
    /// `O(log₂ n)` probes without. (B-tree search in [`crate::BTree`] gives
    /// the `O(log_B n)` bound when that matters.)
    pub fn partition_point(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        let mut lo = 0usize;
        let mut hi = self.data.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.model.touch(self.array_id, (mid / self.per_block) as u64);
            if pred(&self.data[mid]) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Direct slice access **without charging I/Os**. For use by tests and
    /// by build-time code that has already accounted for its passes.
    pub fn raw(&self) -> &[T] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EmConfig;

    fn model64() -> CostModel {
        CostModel::new(EmConfig::new(64))
    }

    #[test]
    fn build_charges_writes() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..130).collect());
        assert_eq!(a.blocks(), 3);
        assert_eq!(m.report().writes, 3);
        assert_eq!(m.report().reads, 0);
    }

    #[test]
    fn full_scan_costs_ceil_n_over_b() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..1000).collect());
        m.reset();
        let mut sum = 0u64;
        a.scan(|x| sum += x);
        assert_eq!(sum, 999 * 1000 / 2);
        assert_eq!(m.report().reads, 1000u64.div_ceil(64));
    }

    #[test]
    fn range_scan_charges_only_touched_blocks() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..640).collect());
        m.reset();
        let mut cnt = 0;
        a.scan_range(60, 70, |_| cnt += 1); // straddles blocks 0 and 1
        assert_eq!(cnt, 10);
        assert_eq!(m.report().reads, 2);
    }

    #[test]
    fn scan_while_stops_early_and_charges_lazily() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..6400).collect());
        m.reset();
        let visited = a.scan_while(0, 6400, |&x| x < 10);
        assert_eq!(visited, 11); // 0..=10, stopping at 10
        assert_eq!(m.report().reads, 1);
    }

    #[test]
    fn partition_point_agrees_with_slice() {
        let m = model64();
        let v: Vec<u64> = (0..977).map(|i| i * 3).collect();
        let a = BlockArray::new(&m, v.clone());
        for probe in [0u64, 1, 2, 3, 1000, 2927, 2928, 5000] {
            assert_eq!(
                a.partition_point(|&x| x < probe),
                v.partition_point(|&x| x < probe)
            );
        }
    }

    #[test]
    fn get_charges_one_io_per_block() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..256).collect());
        m.reset();
        assert_eq!(*a.get(0), 0);
        assert_eq!(*a.get(63), 63); // same block, but no pool: still 1 I/O
        assert_eq!(*a.get(64), 64);
        assert_eq!(m.report().reads, 3);
    }

    #[test]
    fn pool_makes_repeat_gets_free() {
        let m = CostModel::new(EmConfig::with_memory(64, 8));
        let a = BlockArray::new(&m, (0u64..256).collect());
        m.reset();
        a.get(0);
        a.get(1);
        a.get(63);
        assert_eq!(m.report().reads, 1);
    }

    #[test]
    fn empty_scan_is_free() {
        let m = model64();
        let a: BlockArray<u64> = BlockArray::new(&m, vec![]);
        m.reset();
        a.scan(|_| panic!("no items"));
        assert_eq!(m.report().reads, 0);
        assert!(a.is_empty());
    }
}
