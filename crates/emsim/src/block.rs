//! [`BlockArray`]: a typed array laid out in disk blocks.
//!
//! This is the basic storage primitive of the simulated EM machine: items
//! are packed `⌊B / words(T)⌉` per block and every access charges the
//! [`CostModel`] per distinct block touched. Sequential scans therefore cost
//! `O(n/B)` I/Os and random probes cost one I/O each (modulo buffer-pool
//! hits), matching the model of §1.1.

use crate::cost::CostModel;
use crate::device::{self, BlockId};
use crate::error::EmError;
use crate::fault::{self, Retrier};

/// The checksum stored alongside block `block` of array `seed_id` when it
/// holds `items` items. The sentinel is a pure function of the block's
/// address (the payload itself lives in a native `Vec`, which the simulator
/// never physically scrambles); an injected corruption XORs a nonzero mask
/// into the value read back, so verification fails exactly on the blocks
/// the [`crate::FaultPlan`] corrupted. `seed_id` is the array id for
/// anonymous arrays and the stable name hash for named ones, so a named
/// array's sentinels survive reopening under a fresh array id.
fn block_checksum(seed_id: u64, block: u64, items: u64) -> u64 {
    fault::mix(fault::mix(seed_id ^ 0xC0DE_C0DE) ^ fault::mix(block) ^ items)
}

/// Magic of a mirrored block-header image on the device (`"EMB1"`).
const HEADER_MAGIC: u32 = 0x454D_4231;
/// Header-only image: the 40-byte header with no payload (anonymous
/// arrays and B-tree nodes, whose data lives in native memory).
pub(crate) const KIND_HEADER: u32 = 0;
/// Header + payload image: named persistent arrays, whose items are
/// serialized after the header via [`Persist`].
const KIND_PAYLOAD: u32 = 1;
/// Bytes in the fixed header.
const HEADER_LEN: usize = 40;

pub(crate) fn encode_header(
    kind: u32,
    seed_id: u64,
    block: u64,
    items: u32,
    per_block: u32,
    checksum: u64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&HEADER_MAGIC.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&seed_id.to_le_bytes());
    out.extend_from_slice(&block.to_le_bytes());
    out.extend_from_slice(&items.to_le_bytes());
    out.extend_from_slice(&per_block.to_le_bytes());
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// `(kind, seed_id, block, items, per_block, checksum)` of a header image,
/// or `None` when the bytes are not a valid header. The kind word carries
/// the payload codec's wire tag in bits 8..16 (see [`encode_image`]);
/// callers split it with [`split_kind`].
fn decode_header(bytes: &[u8]) -> Option<(u32, u64, u64, u32, u32, u64)> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
    let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    if u32_at(0) != HEADER_MAGIC {
        return None;
    }
    Some((u32_at(4), u64_at(8), u64_at(16), u32_at(24), u32_at(28), u64_at(32)))
}

/// Split a header kind word into `(kind, codec_tag)`.
fn split_kind(kind: u32) -> (u32, u8) {
    (kind & 0xFF, ((kind >> 8) & 0xFF) as u8)
}

/// Assemble a complete block image: 40-byte header followed by `payload`
/// run through `codec`, with the codec's wire tag stamped into bits 8..16
/// of the header's kind word so the image is self-describing — a store
/// written under one `EMSIM_CODEC` opens correctly under any other. The
/// header itself always stays raw (recovery must parse it before knowing
/// any codec), and header-only images (`payload` empty — anonymous-array
/// and B-tree mirrors) skip the codec entirely: tag 0, byte-identical to
/// the pre-codec format. Device-level CRCs are computed over the image as
/// written, so torn-write detection covers compressed payloads for free.
#[allow(clippy::too_many_arguments)] // mirrors encode_header's field list + codec/payload
pub(crate) fn encode_image(
    codec: &dyn crate::codec::BlockCodec,
    kind: u32,
    seed_id: u64,
    block: u64,
    items: u32,
    per_block: u32,
    checksum: u64,
    payload: &[u8],
) -> Vec<u8> {
    if payload.is_empty() {
        return encode_header(kind, seed_id, block, items, per_block, checksum);
    }
    let kind = kind | (u32::from(codec.tag()) << 8);
    let mut image = encode_header(kind, seed_id, block, items, per_block, checksum);
    image.extend_from_slice(&codec.encode(payload));
    image
}

/// A fixed-size, byte-oriented serialization contract for items that can
/// live on a persistent device ([`BlockArray::new_named`] /
/// [`BlockArray::open_named`]). Fixed size keeps block layout trivially
/// recoverable: `items × SIZE` bytes after the header, no framing.
pub trait Persist: Sized {
    /// Serialized size in bytes (every value of the type, exactly).
    const SIZE: usize;
    /// Append exactly [`Persist::SIZE`] bytes to `out`.
    fn to_bytes(&self, out: &mut Vec<u8>);
    /// Decode from exactly [`Persist::SIZE`] bytes; `None` if the bytes
    /// are not a valid encoding.
    fn from_bytes(bytes: &[u8]) -> Option<Self>;
}

impl Persist for u64 {
    const SIZE: usize = 8;
    fn to_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }
}

impl Persist for i64 {
    const SIZE: usize = 8;
    fn to_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        Some(i64::from_le_bytes(bytes.try_into().ok()?))
    }
}

impl Persist for u32 {
    const SIZE: usize = 4;
    fn to_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;
    fn to_bytes(&self, out: &mut Vec<u8>) {
        self.0.to_bytes(out);
        self.1.to_bytes(out);
    }
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::SIZE {
            return None;
        }
        Some((A::from_bytes(&bytes[..A::SIZE])?, B::from_bytes(&bytes[A::SIZE..])?))
    }
}

/// The stable device identity of a named array: a pure function of the
/// name, so reopening finds the same blocks across processes.
fn name_id(name: &str) -> u64 {
    device::crc64(name.as_bytes())
}

/// A typed array stored in blocks of the simulated disk.
///
/// Every block carries a checksum written at construction time; the `try_*`
/// accessors re-verify it after each successful read, so silent corruption
/// injected by the meter's [`crate::FaultPlan`] surfaces as
/// [`EmError::Corrupt`] instead of wrong answers.
#[derive(Debug)]
pub struct BlockArray<T> {
    data: Vec<T>,
    per_block: usize,
    array_id: u64,
    model: CostModel,
    /// Per-block checksums, written when the array is laid out.
    checksums: Vec<u64>,
}

impl<T> BlockArray<T> {
    /// Store `data` on disk, charging the writes needed to lay it out.
    pub fn new(model: &CostModel, data: Vec<T>) -> Self {
        let array_id = model.new_array_id();
        BlockArray::with_seed(model, data, array_id, array_id)
    }

    /// The shared layout path: charge the writes, compute sentinel
    /// checksums under `seed_id`, and mirror each block's header image to
    /// the device (best-effort and unmetered — the mirror is a shadow of
    /// the logical write, verified by the `try_*` read path, never a cost).
    fn with_seed(model: &CostModel, data: Vec<T>, array_id: u64, seed_id: u64) -> Self {
        let per_block = model.config().items_per_block::<T>();
        let blocks = data.len().div_ceil(per_block);
        model.charge_writes(blocks as u64);
        let checksums: Vec<u64> = (0..blocks as u64)
            .map(|b| {
                let lo = b as usize * per_block;
                let items = (data.len() - lo).min(per_block) as u64;
                block_checksum(seed_id, b, items)
            })
            .collect();
        let codec = crate::codec::active_codec();
        for b in 0..blocks as u64 {
            let lo = b as usize * per_block;
            let items = (data.len() - lo).min(per_block) as u32;
            let header = encode_image(
                codec,
                KIND_HEADER,
                seed_id,
                b,
                items,
                per_block as u32,
                checksums[b as usize],
                &[],
            );
            model.device_write(array_id, b, &header);
        }
        BlockArray {
            data,
            per_block,
            array_id,
            model: model.clone(),
            checksums,
        }
    }

    /// Number of items stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Items per block for this array's element type.
    pub fn items_per_block(&self) -> usize {
        self.per_block
    }

    /// Number of blocks occupied — the array's *space* in the EM model.
    pub fn blocks(&self) -> u64 {
        self.data.len().div_ceil(self.per_block) as u64
    }

    /// Random access to item `i`: charges the block containing `i`.
    pub fn get(&self, i: usize) -> &T {
        self.model.touch(self.array_id, (i / self.per_block) as u64);
        &self.data[i]
    }

    /// Read items `[lo, hi)` sequentially, charging each block in the range
    /// once, and call `f` on each item.
    pub fn scan_range(&self, lo: usize, hi: usize, mut f: impl FnMut(&T)) {
        assert!(lo <= hi && hi <= self.data.len(), "scan range out of bounds");
        if lo == hi {
            return;
        }
        let first_block = lo / self.per_block;
        let last_block = (hi - 1) / self.per_block;
        for b in first_block..=last_block {
            self.model.touch(self.array_id, b as u64);
        }
        for item in &self.data[lo..hi] {
            f(item);
        }
    }

    /// Scan the whole array.
    pub fn scan(&self, f: impl FnMut(&T)) {
        self.scan_range(0, self.data.len(), f);
    }

    /// Scan `[lo, hi)` but stop early when `f` returns `false`. Blocks are
    /// charged lazily, only as the scan reaches them. Returns the number of
    /// items visited.
    pub fn scan_while(&self, lo: usize, hi: usize, mut f: impl FnMut(&T) -> bool) -> usize {
        assert!(lo <= hi && hi <= self.data.len(), "scan range out of bounds");
        let mut visited = 0;
        let mut current_block = usize::MAX;
        for i in lo..hi {
            let b = i / self.per_block;
            if b != current_block {
                self.model.touch(self.array_id, b as u64);
                current_block = b;
            }
            visited += 1;
            if !f(&self.data[i]) {
                break;
            }
        }
        visited
    }

    /// Binary search by a key extractor over an array sorted by that key.
    /// Charges one I/O per probe, i.e. `O(log₂(n/B))`-ish with a pool, or
    /// `O(log₂ n)` probes without. (B-tree search in [`crate::BTree`] gives
    /// the `O(log_B n)` bound when that matters.)
    pub fn partition_point(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        let mut lo = 0usize;
        let mut hi = self.data.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.model.touch(self.array_id, (mid / self.per_block) as u64);
            if pred(&self.data[mid]) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Direct slice access **without charging I/Os**. For use by tests and
    /// by build-time code that has already accounted for its passes.
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Verify block `block`'s checksum against what the device reads back.
    /// A mismatch (silent corruption injected by the meter's fault plan) is
    /// recorded on the meter and surfaced as [`EmError::Corrupt`].
    pub fn verify(&self, block: u64) -> Result<(), EmError> {
        let stored = self.checksums[block as usize];
        let plan = self.model.fault_plan();
        let read_back = if plan.is_corrupted(self.array_id, block) {
            stored ^ plan.corruption_mask(self.array_id, block)
        } else {
            stored
        };
        if read_back != stored {
            self.model.record_fault();
            return Err(EmError::Corrupt {
                array_id: self.array_id,
                block,
            });
        }
        Ok(())
    }

    /// Read one block fallibly: retry transient faults under `retrier`
    /// (each attempt charges one read I/O on a pool miss), then verify the
    /// checksum.
    fn try_read_block(&self, block: u64, retrier: &Retrier) -> Result<(), EmError> {
        retrier.run(|attempt| self.model.try_fetch(self.array_id, block, attempt))?;
        self.verify(block)
    }

    /// Fallible [`BlockArray::get`]: random access to item `i` under the
    /// meter's fault plan, retrying transient faults with `retrier`.
    pub fn try_get(&self, i: usize, retrier: &Retrier) -> Result<&T, EmError> {
        self.try_read_block((i / self.per_block) as u64, retrier)?;
        Ok(&self.data[i])
    }

    /// Fallible [`BlockArray::scan_range`]: read `[lo, hi)` sequentially,
    /// stopping at the first block that stays unreadable after retries.
    pub fn try_scan_range(
        &self,
        lo: usize,
        hi: usize,
        retrier: &Retrier,
        mut f: impl FnMut(&T),
    ) -> Result<(), EmError> {
        self.try_scan_while(lo, hi, retrier, |item| {
            f(item);
            true
        })
        .map(|_| ())
        .map_err(|(_, e)| e)
    }

    /// Fallible [`BlockArray::scan_while`]: scan `[lo, hi)` until `f`
    /// returns `false`, a fault survives its retries, or the range ends.
    ///
    /// Returns the number of items visited; on error, the pair of (items
    /// visited before the failing block, error) — the partial prefix is the
    /// raw material of graceful degradation, so callers can still answer
    /// from whatever was read.
    pub fn try_scan_while(
        &self,
        lo: usize,
        hi: usize,
        retrier: &Retrier,
        mut f: impl FnMut(&T) -> bool,
    ) -> Result<usize, (usize, EmError)> {
        assert!(lo <= hi && hi <= self.data.len(), "scan range out of bounds");
        let mut visited = 0;
        let mut current_block = u64::MAX;
        for i in lo..hi {
            let b = (i / self.per_block) as u64;
            if b != current_block {
                self.try_read_block(b, retrier).map_err(|e| (visited, e))?;
                current_block = b;
            }
            visited += 1;
            if !f(&self.data[i]) {
                break;
            }
        }
        Ok(visited)
    }

    /// Fallible [`BlockArray::partition_point`]: binary search under the
    /// fault plan. An unreadable probe block aborts the search — a binary
    /// search cannot route around a missing pivot.
    pub fn try_partition_point(
        &self,
        retrier: &Retrier,
        mut pred: impl FnMut(&T) -> bool,
    ) -> Result<usize, EmError> {
        let mut lo = 0usize;
        let mut hi = self.data.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.try_read_block((mid / self.per_block) as u64, retrier)?;
            if pred(&self.data[mid]) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }
}

impl<T: Persist> BlockArray<T> {
    /// Store `data` *durably* under `name`: in addition to the normal
    /// logical layout (same charges as [`BlockArray::new`]), every block is
    /// written to the meter's device with its full payload under the
    /// reserved [`device::NAMED_NS`] namespace, keyed by a stable hash of
    /// `name` — so [`BlockArray::open_named`] can rebuild the array in a
    /// later process. Durable write failures surface as errors; the write
    /// becomes crash-proof only after the caller syncs the device.
    pub fn new_named(model: &CostModel, name: &str, data: Vec<T>) -> Result<Self, EmError> {
        let seed = name_id(name);
        let array_id = model.new_array_id();
        let arr = BlockArray::with_seed(model, data, array_id, seed);
        let dev = model.device();
        let codec = crate::codec::active_codec();
        for b in 0..arr.blocks() {
            let lo = b as usize * arr.per_block;
            let hi = (lo + arr.per_block).min(arr.data.len());
            let items = (hi - lo) as u32;
            let mut payload = Vec::with_capacity((hi - lo) * T::SIZE);
            for item in &arr.data[lo..hi] {
                item.to_bytes(&mut payload);
            }
            let image = encode_image(
                codec,
                KIND_PAYLOAD,
                seed,
                b,
                items,
                arr.per_block as u32,
                arr.checksums[b as usize],
                &payload,
            );
            dev.write(BlockId { ns: device::NAMED_NS, array: seed, block: b }, &image)?;
        }
        Ok(arr)
    }

    /// Rebuild the array stored by [`BlockArray::new_named`] from the
    /// meter's device, charging one read per block loaded (a sequential
    /// recovery scan). Every block's header is validated (magic, kind,
    /// name identity, block index, layout) and its sentinel checksum
    /// recomputed; any mismatch, torn payload or undecodable item surfaces
    /// as [`EmError::Corrupt`] on the named identity — feeding the same
    /// retry/degrade ladder as runtime corruption.
    pub fn open_named(model: &CostModel, name: &str) -> Result<Self, EmError> {
        let seed = name_id(name);
        let dev = model.device();
        let blocks = dev.blocks_of(device::NAMED_NS, seed);
        model.charge_reads(blocks.len() as u64);
        let corrupt = |b: u64| EmError::Corrupt { array_id: seed, block: b };
        let mut per_block: Option<usize> = None;
        let mut data: Vec<T> = Vec::new();
        for (i, &b) in blocks.iter().enumerate() {
            // Blocks must be exactly 0..n — a gap means a lost block.
            if b != i as u64 {
                return Err(corrupt(i as u64));
            }
            let image = dev
                .read(BlockId { ns: device::NAMED_NS, array: seed, block: b })?
                .ok_or_else(|| corrupt(b))?;
            let (kind_word, seed_read, block_read, items, per, checksum) =
                decode_header(&image).ok_or_else(|| corrupt(b))?;
            let (kind, codec_tag) = split_kind(kind_word);
            if kind != KIND_PAYLOAD || seed_read != seed || block_read != b {
                return Err(corrupt(b));
            }
            // The header tag, not the ambient codec, decides decoding: a
            // store written under any `EMSIM_CODEC` opens under any other.
            let codec = crate::codec::codec_by_tag(codec_tag).ok_or_else(|| corrupt(b))?;
            let per = per as usize;
            if *per_block.get_or_insert(per) != per {
                return Err(corrupt(b));
            }
            // Every block but the last must be full; checked via the
            // recomputed sentinel below (items feeds the checksum) and the
            // payload length here.
            let items = items as usize;
            if items > per || (i + 1 < blocks.len() && items != per) {
                return Err(corrupt(b));
            }
            if block_checksum(seed, b, items as u64) != checksum {
                return Err(corrupt(b));
            }
            let payload = codec.decode(&image[HEADER_LEN..]).ok_or_else(|| corrupt(b))?;
            if payload.len() != items * T::SIZE {
                return Err(corrupt(b));
            }
            for chunk in payload.chunks_exact(T::SIZE) {
                data.push(T::from_bytes(chunk).ok_or_else(|| corrupt(b))?);
            }
        }
        let per_block = per_block.unwrap_or_else(|| model.config().items_per_block::<T>());
        let array_id = model.new_array_id();
        let checksums = (0..blocks.len() as u64)
            .map(|b| {
                let lo = b as usize * per_block;
                let items = (data.len() - lo).min(per_block) as u64;
                block_checksum(seed, b, items)
            })
            .collect();
        let arr = BlockArray {
            data,
            per_block,
            array_id,
            model: model.clone(),
            checksums,
        };
        // Re-mirror header images under this meter's namespace so the
        // `try_*` read path verifies the reopened array like any other.
        let mirror_codec = crate::codec::active_codec();
        for (b, sum) in arr.checksums.iter().enumerate() {
            let lo = b * per_block;
            let items = (arr.data.len() - lo).min(per_block) as u32;
            let header = encode_image(
                mirror_codec,
                KIND_HEADER,
                seed,
                b as u64,
                items,
                per_block as u32,
                *sum,
                &[],
            );
            model.device_write(array_id, b as u64, &header);
        }
        Ok(arr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EmConfig;

    fn model64() -> CostModel {
        CostModel::new(EmConfig::new(64))
    }

    #[test]
    fn build_charges_writes() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..130).collect());
        assert_eq!(a.blocks(), 3);
        assert_eq!(m.report().writes, 3);
        assert_eq!(m.report().reads, 0);
    }

    #[test]
    fn full_scan_costs_ceil_n_over_b() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..1000).collect());
        m.reset();
        let mut sum = 0u64;
        a.scan(|x| sum += x);
        assert_eq!(sum, 999 * 1000 / 2);
        assert_eq!(m.report().reads, 1000u64.div_ceil(64));
    }

    #[test]
    fn range_scan_charges_only_touched_blocks() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..640).collect());
        m.reset();
        let mut cnt = 0;
        a.scan_range(60, 70, |_| cnt += 1); // straddles blocks 0 and 1
        assert_eq!(cnt, 10);
        assert_eq!(m.report().reads, 2);
    }

    #[test]
    fn scan_while_stops_early_and_charges_lazily() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..6400).collect());
        m.reset();
        let visited = a.scan_while(0, 6400, |&x| x < 10);
        assert_eq!(visited, 11); // 0..=10, stopping at 10
        assert_eq!(m.report().reads, 1);
    }

    #[test]
    fn partition_point_agrees_with_slice() {
        let m = model64();
        let v: Vec<u64> = (0..977).map(|i| i * 3).collect();
        let a = BlockArray::new(&m, v.clone());
        for probe in [0u64, 1, 2, 3, 1000, 2927, 2928, 5000] {
            assert_eq!(
                a.partition_point(|&x| x < probe),
                v.partition_point(|&x| x < probe)
            );
        }
    }

    #[test]
    fn get_charges_one_io_per_block() {
        let m = model64();
        let a = BlockArray::new(&m, (0u64..256).collect());
        m.reset();
        assert_eq!(*a.get(0), 0);
        assert_eq!(*a.get(63), 63); // same block, but no pool: still 1 I/O
        assert_eq!(*a.get(64), 64);
        assert_eq!(m.report().reads, 3);
    }

    #[test]
    fn pool_makes_repeat_gets_free() {
        let m = CostModel::new(EmConfig::with_memory(64, 8));
        let a = BlockArray::new(&m, (0u64..256).collect());
        m.reset();
        a.get(0);
        a.get(1);
        a.get(63);
        assert_eq!(m.report().reads, 1);
    }

    #[test]
    fn empty_scan_is_free() {
        let m = model64();
        let a: BlockArray<u64> = BlockArray::new(&m, vec![]);
        m.reset();
        a.scan(|_| panic!("no items"));
        assert_eq!(m.report().reads, 0);
        assert!(a.is_empty());
    }

    use crate::fault::{FaultPlan, Retrier};

    fn faulty_model(plan: FaultPlan) -> CostModel {
        CostModel::with_faults(EmConfig::new(64), plan)
    }

    #[test]
    fn try_accessors_match_infallible_under_inert_plan() {
        let m = faulty_model(FaultPlan::none());
        let a = BlockArray::new(&m, (0u64..500).collect());
        m.reset();
        let r = Retrier::default();
        assert_eq!(a.try_get(123, &r).copied(), Ok(123));
        let mut sum = 0u64;
        a.try_scan_range(0, 500, &r, |&x| sum += x).unwrap();
        assert_eq!(sum, 499 * 500 / 2);
        assert_eq!(
            a.try_partition_point(&r, |&x| x < 250),
            Ok(250)
        );
        assert_eq!(m.report().faults, 0);
    }

    #[test]
    fn transient_faults_are_retried_and_charged() {
        let m = faulty_model(FaultPlan::new(21).with_transient(0.5));
        let a = BlockArray::new(&m, (0u64..6400).collect());
        m.reset();
        // A generous budget makes full-scan success overwhelmingly likely
        // (100 blocks × 2^-12 residual failure probability).
        let r = Retrier::new(11);
        let mut cnt = 0usize;
        a.try_scan_range(0, 6400, &r, |_| cnt += 1).unwrap();
        assert_eq!(cnt, 6400);
        let rep = m.report();
        assert_eq!(rep.faults as i64, rep.reads as i64 - 100,
            "every read beyond the 100 payload blocks was a charged, retried failure");
        assert!(rep.faults > 0, "rate 0.5 over 100 blocks must fault somewhere");
    }

    #[test]
    fn bad_blocks_surface_with_partial_progress() {
        let m = faulty_model(FaultPlan::new(8).with_permanent(0.2));
        let a = BlockArray::new(&m, (0u64..6400).collect());
        let r = Retrier::new(3);
        match a.try_scan_while(0, 6400, &r, |_| true) {
            Ok(n) => {
                // No bad block in this array's id-universe: all visited.
                assert_eq!(n, 6400);
            }
            Err((visited, e)) => {
                assert!(!e.is_transient());
                // The prefix before the failing block was fully delivered.
                assert_eq!(visited % 64, 0, "failed at a block boundary");
                let (_, block) = e.location();
                assert_eq!(visited, block as usize * 64);
            }
        }
    }

    #[test]
    fn corruption_is_detected_not_returned() {
        // Corrupt every block: every try access must report Corrupt, never
        // hand back data, and the meter must count the detections.
        let m = faulty_model(FaultPlan::new(3).with_corrupt(1.0));
        let a = BlockArray::new(&m, (0u64..64).collect());
        m.reset();
        let r = Retrier::default();
        let e = a.try_get(0, &r).unwrap_err();
        assert!(matches!(e, EmError::Corrupt { .. }));
        assert_eq!(m.report().faults, 1);
        assert!(a.try_scan_range(0, 64, &r, |_| ()).is_err());
        // The infallible path still reads "successfully" — corruption is
        // silent by definition and only checksums catch it.
        assert_eq!(*a.get(5), 5);
    }

    #[test]
    fn verify_passes_on_clean_blocks() {
        let m = faulty_model(FaultPlan::none());
        let a = BlockArray::new(&m, (0u64..200).collect());
        for b in 0..a.blocks() {
            assert_eq!(a.verify(b), Ok(()));
        }
    }

    use crate::device::{BlockDevice, FileDevice, MemDevice};
    use crate::PoolPolicy;
    use crate::sync::Arc;

    fn meter_on(dev: Arc<dyn BlockDevice>) -> CostModel {
        CostModel::with_device(EmConfig::new(64), FaultPlan::none(), PoolPolicy::Lru, dev)
    }

    #[test]
    fn named_array_roundtrips_on_one_device() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new());
        let m = meter_on(dev.clone());
        let original: Vec<u64> = (0..150).map(|i| i * 7).collect();
        let a = BlockArray::new_named(&m, "idx", original.clone()).expect("persist");
        assert_eq!(a.raw(), &original[..]);
        dev.sync().expect("sync");
        // A different meter on the same device finds it by name.
        let m2 = meter_on(dev);
        let b: BlockArray<u64> = BlockArray::open_named(&m2, "idx").expect("reopen");
        assert_eq!(b.raw(), &original[..]);
        assert_eq!(b.blocks(), a.blocks());
        assert_eq!(
            m2.report().reads,
            a.blocks(),
            "recovery charges one sequential read per block"
        );
        for blk in 0..b.blocks() {
            assert_eq!(b.verify(blk), Ok(()), "sentinels survive the name round-trip");
        }
    }

    #[test]
    fn named_array_survives_file_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "emsim-block-named-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let data: Vec<(u64, u64)> = (0..97).map(|i| (i, i * i)).collect();
        {
            let dev: Arc<dyn BlockDevice> = Arc::new(FileDevice::open(&dir).expect("open"));
            let m = meter_on(dev.clone());
            BlockArray::new_named(&m, "pairs", data.clone()).expect("persist");
            dev.sync().expect("sync");
        }
        let dev: Arc<dyn BlockDevice> = Arc::new(FileDevice::open(&dir).expect("reopen"));
        let m = meter_on(dev);
        let b: BlockArray<(u64, u64)> = BlockArray::open_named(&m, "pairs").expect("load");
        assert_eq!(b.raw(), &data[..]);
        // Fallible reads verify clean against the reopened mirror.
        let r = Retrier::default();
        assert_eq!(b.try_get(42, &r).copied(), Ok((42, 42 * 42)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_name_opens_empty_and_missing_blocks_are_corrupt() {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new());
        let m = meter_on(dev.clone());
        let e: BlockArray<u64> = BlockArray::open_named(&m, "nope").expect("empty");
        assert!(e.is_empty());
        // Drop a block out of the middle by writing a two-block array and
        // corrupting the device's view: simulate by persisting under a name
        // and opening with a different name that hashes no blocks — then
        // check a direct gap via a hand-written hole.
        let data: Vec<u64> = (0..100).collect();
        BlockArray::new_named(&m, "holey", data).expect("persist");
        // Forge a gap: a foreign block index far past the end under the
        // same name identity.
        let seed = super::name_id("holey");
        dev.write(
            BlockId { ns: device::NAMED_NS, array: seed, block: 9 },
            b"garbage-not-a-header-image-padding-40bytes!!",
        )
        .expect("write");
        let err = BlockArray::<u64>::open_named(&m, "holey").expect_err("gap detected");
        assert!(matches!(err, EmError::Corrupt { .. }));
    }
}
