//! [`EmError`]: the typed failure vocabulary of the fallible EM substrate.
//!
//! The infallible accessors ([`crate::BlockArray::get`] and friends) model
//! perfect media; the `try_*` accessors instead surface injected faults
//! (see [`crate::fault`]) as values of this type, so every layer above the
//! substrate can decide to retry, degrade, or report — never panic.

/// A failed block access in the simulated EM machine.
///
/// Every variant carries the `(array_id, block)` address of the failing
/// block so recovery policies can reason about *which* structure broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmError {
    /// A transient read error: the device timed out or returned garbage it
    /// itself flagged. Retrying the same block may succeed.
    Transient {
        /// Structure identity (from [`crate::CostModel::new_array_id`]).
        array_id: u64,
        /// Block index within the structure.
        block: u64,
    },
    /// A permanently unreadable block: every retry will fail.
    BadBlock {
        /// Structure identity.
        array_id: u64,
        /// Block index within the structure.
        block: u64,
    },
    /// The block was read "successfully" but its checksum does not match —
    /// silent corruption, detected. Retrying re-reads the same corrupted
    /// sectors, so this is as permanent as [`EmError::BadBlock`].
    Corrupt {
        /// Structure identity.
        array_id: u64,
        /// Block index within the structure.
        block: u64,
    },
    /// A [`crate::fault::Retrier`] gave up: the last error was transient but
    /// the retry budget ran out after `attempts` total attempts.
    Exhausted {
        /// Structure identity.
        array_id: u64,
        /// Block index within the structure.
        block: u64,
        /// Total attempts made (first try + retries).
        attempts: u32,
    },
}

impl EmError {
    /// Whether retrying the failed access could possibly succeed.
    /// [`EmError::Exhausted`] is *not* retryable: it already encodes the
    /// decision that retrying stops.
    pub fn is_transient(&self) -> bool {
        matches!(self, EmError::Transient { .. })
    }

    /// The `(array_id, block)` address of the failing block.
    pub fn location(&self) -> (u64, u64) {
        match *self {
            EmError::Transient { array_id, block }
            | EmError::BadBlock { array_id, block }
            | EmError::Corrupt { array_id, block }
            | EmError::Exhausted {
                array_id, block, ..
            } => (array_id, block),
        }
    }
}

impl std::fmt::Display for EmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmError::Transient { array_id, block } => {
                write!(f, "transient read error at array {array_id} block {block}")
            }
            EmError::BadBlock { array_id, block } => {
                write!(f, "permanently bad block at array {array_id} block {block}")
            }
            EmError::Corrupt { array_id, block } => {
                write!(f, "checksum mismatch at array {array_id} block {block}")
            }
            EmError::Exhausted {
                array_id,
                block,
                attempts,
            } => write!(
                f,
                "retries exhausted after {attempts} attempts at array {array_id} block {block}"
            ),
        }
    }
}

impl std::error::Error for EmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_is_the_only_retryable_kind() {
        assert!(EmError::Transient { array_id: 0, block: 1 }.is_transient());
        assert!(!EmError::BadBlock { array_id: 0, block: 1 }.is_transient());
        assert!(!EmError::Corrupt { array_id: 0, block: 1 }.is_transient());
        assert!(!EmError::Exhausted { array_id: 0, block: 1, attempts: 4 }.is_transient());
    }

    #[test]
    fn location_reports_the_failing_block() {
        assert_eq!(EmError::BadBlock { array_id: 7, block: 9 }.location(), (7, 9));
        assert_eq!(
            EmError::Exhausted { array_id: 1, block: 2, attempts: 3 }.location(),
            (1, 2)
        );
    }

    #[test]
    fn display_names_the_fault_kind() {
        let e = EmError::Corrupt { array_id: 3, block: 4 };
        assert!(e.to_string().contains("checksum"));
        assert!(format!("{}", EmError::Transient { array_id: 0, block: 0 }).contains("transient"));
    }
}
