//! [`EmError`]: the typed failure vocabulary of the fallible EM substrate.
//!
//! The infallible accessors ([`crate::BlockArray::get`] and friends) model
//! perfect media; the `try_*` accessors instead surface injected faults
//! (see [`crate::fault`]) as values of this type, so every layer above the
//! substrate can decide to retry, degrade, or report — never panic.

use std::path::PathBuf;
use std::sync::Arc;

/// A failed block access in the simulated EM machine.
///
/// The logical variants carry the `(array_id, block)` address of the failing
/// block so recovery policies can reason about *which* structure broke;
/// [`EmError::Io`] instead carries the syscall context (operation name, file
/// path, byte offset) of a real device failure. The enum is non-exhaustive
/// so future device kinds can add failure modes without breaking matches.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum EmError {
    /// A transient read error: the device timed out or returned garbage it
    /// itself flagged. Retrying the same block may succeed.
    Transient {
        /// Structure identity (from [`crate::CostModel::new_array_id`]).
        array_id: u64,
        /// Block index within the structure.
        block: u64,
    },
    /// A permanently unreadable block: every retry will fail.
    BadBlock {
        /// Structure identity.
        array_id: u64,
        /// Block index within the structure.
        block: u64,
    },
    /// The block was read "successfully" but its checksum does not match —
    /// silent corruption, detected. Retrying re-reads the same corrupted
    /// sectors, so this is as permanent as [`EmError::BadBlock`].
    Corrupt {
        /// Structure identity.
        array_id: u64,
        /// Block index within the structure.
        block: u64,
    },
    /// A [`crate::fault::Retrier`] gave up: the last error was transient but
    /// the retry budget ran out after `attempts` total attempts.
    Exhausted {
        /// Structure identity.
        array_id: u64,
        /// Block index within the structure.
        block: u64,
        /// Total attempts made (first try + retries).
        attempts: u32,
    },
    /// A real I/O failure from the persistent device layer: the named
    /// syscall failed against the named file at the given byte offset.
    /// Not retryable through the [`crate::fault::Retrier`] — a failed
    /// `pwrite`/`fsync`/`rename` means durability was *not* achieved and
    /// the caller must treat the device as suspect.
    Io {
        /// The operation that failed (`"pread"`, `"pwrite"`, `"fsync"`,
        /// `"rename"`, `"open"`, …).
        op: &'static str,
        /// The file the operation targeted.
        path: Arc<PathBuf>,
        /// Byte offset of the operation within the file (0 for whole-file
        /// operations like `fsync` and `rename`).
        offset: u64,
        /// The underlying OS error. `Arc`-wrapped because
        /// [`std::io::Error`] is neither `Clone` nor `PartialEq`; equality
        /// of two `Io` values compares the [`std::io::Error::kind`].
        source: Arc<std::io::Error>,
    },
}

impl EmError {
    /// Construct an [`EmError::Io`] from a failed syscall. The preferred
    /// way to route a device failure into the error ladder — it keeps the
    /// op-name vocabulary consistent across call sites.
    pub fn io(
        op: &'static str,
        path: impl Into<PathBuf>,
        offset: u64,
        source: std::io::Error,
    ) -> Self {
        EmError::Io {
            op,
            path: Arc::new(path.into()),
            offset,
            source: Arc::new(source),
        }
    }

    /// Whether retrying the failed access could possibly succeed.
    /// [`EmError::Exhausted`] is *not* retryable: it already encodes the
    /// decision that retrying stops. [`EmError::Io`] is not retryable
    /// either — a failed durability syscall leaves the device suspect.
    pub fn is_transient(&self) -> bool {
        matches!(self, EmError::Transient { .. })
    }

    /// The `(array_id, block)` address of the failing block.
    ///
    /// [`EmError::Io`] has no logical block address (it happened below the
    /// block mapping); it reports `(u64::MAX, offset)` so that diagnostics
    /// still carry the byte offset. The [`crate::fault::Retrier`] never
    /// calls this for `Io` — only transient errors, which always carry a
    /// real address, reach its exhaustion path.
    pub fn location(&self) -> (u64, u64) {
        match *self {
            EmError::Transient { array_id, block }
            | EmError::BadBlock { array_id, block }
            | EmError::Corrupt { array_id, block }
            | EmError::Exhausted {
                array_id, block, ..
            } => (array_id, block),
            EmError::Io { offset, .. } => (u64::MAX, offset),
        }
    }
}

/// Structural equality; two [`EmError::Io`] values compare equal when their
/// op, path, offset and [`std::io::Error::kind`] agree (the OS error payload
/// itself is not comparable).
impl PartialEq for EmError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                EmError::Transient { array_id: a1, block: b1 },
                EmError::Transient { array_id: a2, block: b2 },
            )
            | (
                EmError::BadBlock { array_id: a1, block: b1 },
                EmError::BadBlock { array_id: a2, block: b2 },
            )
            | (
                EmError::Corrupt { array_id: a1, block: b1 },
                EmError::Corrupt { array_id: a2, block: b2 },
            ) => (a1, b1) == (a2, b2),
            (
                EmError::Exhausted { array_id: a1, block: b1, attempts: n1 },
                EmError::Exhausted { array_id: a2, block: b2, attempts: n2 },
            ) => (a1, b1, n1) == (a2, b2, n2),
            (
                EmError::Io { op: o1, path: p1, offset: f1, source: s1 },
                EmError::Io { op: o2, path: p2, offset: f2, source: s2 },
            ) => o1 == o2 && p1 == p2 && f1 == f2 && s1.kind() == s2.kind(),
            _ => false,
        }
    }
}

impl std::fmt::Display for EmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmError::Transient { array_id, block } => {
                write!(f, "transient read error at array {array_id} block {block}")
            }
            EmError::BadBlock { array_id, block } => {
                write!(f, "permanently bad block at array {array_id} block {block}")
            }
            EmError::Corrupt { array_id, block } => {
                write!(f, "checksum mismatch at array {array_id} block {block}")
            }
            EmError::Exhausted {
                array_id,
                block,
                attempts,
            } => write!(
                f,
                "retries exhausted after {attempts} attempts at array {array_id} block {block}"
            ),
            EmError::Io {
                op,
                path,
                offset,
                source,
            } => write!(
                f,
                "{op} failed at byte {offset} of {}: {source}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for EmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmError::Io { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_is_the_only_retryable_kind() {
        assert!(EmError::Transient { array_id: 0, block: 1 }.is_transient());
        assert!(!EmError::BadBlock { array_id: 0, block: 1 }.is_transient());
        assert!(!EmError::Corrupt { array_id: 0, block: 1 }.is_transient());
        assert!(!EmError::Exhausted { array_id: 0, block: 1, attempts: 4 }.is_transient());
    }

    #[test]
    fn location_reports_the_failing_block() {
        assert_eq!(EmError::BadBlock { array_id: 7, block: 9 }.location(), (7, 9));
        assert_eq!(
            EmError::Exhausted { array_id: 1, block: 2, attempts: 3 }.location(),
            (1, 2)
        );
    }

    #[test]
    fn display_names_the_fault_kind() {
        let e = EmError::Corrupt { array_id: 3, block: 4 };
        assert!(e.to_string().contains("checksum"));
        assert!(format!("{}", EmError::Transient { array_id: 0, block: 0 }).contains("transient"));
    }

    #[test]
    fn io_errors_carry_syscall_context() {
        let e = EmError::io(
            "pwrite",
            "/tmp/emsim/data",
            4096,
            std::io::Error::other("disk full"),
        );
        assert!(!e.is_transient(), "a failed durability syscall is final");
        assert_eq!(e.location(), (u64::MAX, 4096));
        let s = e.to_string();
        assert!(s.contains("pwrite"), "{s}");
        assert!(s.contains("4096"), "{s}");
        assert!(s.contains("/tmp/emsim/data"), "{s}");
        assert!(s.contains("disk full"), "{s}");
        use std::error::Error;
        assert!(e.source().is_some(), "the OS error chains as source()");
    }

    #[test]
    fn io_equality_compares_kind_not_payload() {
        use std::io::{Error, ErrorKind};
        let a = EmError::io("fsync", "/d/cat", 0, Error::new(ErrorKind::NotFound, "x"));
        let b = EmError::io("fsync", "/d/cat", 0, Error::new(ErrorKind::NotFound, "y"));
        let c = EmError::io("fsync", "/d/cat", 0, Error::new(ErrorKind::PermissionDenied, "x"));
        assert_eq!(a, b, "same kind compares equal regardless of message");
        assert_ne!(a, c, "different kinds differ");
        assert_ne!(a, EmError::Corrupt { array_id: 0, block: 0 });
    }
}
