//! # topk — umbrella crate for the `topk-reductions` workspace
//!
//! A Rust implementation of the general top-k indexing reductions of
//! Rahul & Tao, *"Efficient Top-k Indexing via General Reductions"*,
//! PODS 2016, together with every substrate the paper builds on and all the
//! concrete structures of its Theorems 3–6 and Corollary 1.
//!
//! This crate re-exports the workspace's public API:
//!
//! * [`core`] — the reductions (Theorems 1 and 2), sampling lemmas,
//!   core-sets, baselines, and the framework traits.
//! * [`em`] — the instrumented external-memory model substrate.
//! * [`geometry`] — the computational-geometry kit.
//! * [`index`] — classic index substrates (priority search tree, segment
//!   tree, kd-tree, weight canonical trees).
//! * [`interval`], [`enclosure`], [`dominance`], [`halfspace`],
//!   [`range1d`], [`range2d`] — the concrete problems (Theorems 3–6,
//!   Corollary 1, and the §2 survey problems).
//! * [`workloads`] — seeded data/query generators used by the experiments.
//!
//! ## Quick start
//!
//! ```
//! use topk::core::{CostModel, EmConfig, TopKIndex};
//! use topk::interval::{Interval, TopKStabbing};
//!
//! // A set of weighted intervals; weights are distinct (paper §1.1).
//! let data: Vec<Interval> = (0..1000u64)
//!     .map(|i| Interval::new(i as f64, (i + i % 50) as f64, i))
//!     .collect();
//!
//! let model = CostModel::new(EmConfig::new(64));
//! let index = TopKStabbing::build(&model, data, 7);
//!
//! // "Report the 5 heaviest intervals stabbed by x = 500."
//! let mut out = Vec::new();
//! index.query_topk(&500.0, 5, &mut out);
//! assert_eq!(out.len(), 5);
//! assert!(out.windows(2).all(|w| w[0].weight > w[1].weight));
//! ```

pub use dominance;
pub use emsim as em;
pub use enclosure;
pub use geom as geometry;
pub use halfspace;
pub use interval;
pub use range1d;
pub use range2d;
pub use structures as index;
pub use topk_core as core;
pub use workloads;
