//! The paper's §1.4 point-enclosure scenario (Theorem 5):
//!
//! > "Find the 10 gentlemen with the highest salaries such that my age and
//! > height fall into their preferred ranges."
//!
//! Each profile registers an (age × height) preference rectangle weighted
//! by salary; a query is a person's (age, height) point.
//!
//! Run with: `cargo run --release --example dating_site`

use topk::core::{CostModel, EmConfig, TopKIndex};
use topk::enclosure::TopKEnclosure;
use topk::geometry::Point2;
use topk::workloads::rects;

fn main() {
    let model = CostModel::new(EmConfig::new(64));

    let n = 50_000;
    let profiles = rects::dating(n, 12);
    println!("indexing {n} preference rectangles ...");
    let index = TopKEnclosure::build(&model, profiles.clone(), 12);
    println!("built: {} blocks", index.space_blocks());

    let seekers = [
        ("28 years, 168 cm", Point2::new(28.0, 168.0)),
        ("45 years, 182 cm", Point2::new(45.0, 182.0)),
        ("19 years, 155 cm", Point2::new(19.0, 155.0)),
    ];

    for (who, me) in seekers {
        model.reset();
        let mut out = Vec::new();
        index.query_topk(&me, 10, &mut out);
        println!("\n{who}: {} matching profiles in the top-10", out.len());
        for (rank, r) in out.iter().take(3).enumerate() {
            println!(
                "  #{:<2} salary ${:<7} wants age [{:.0},{:.0}] height [{:.0},{:.0}]",
                rank + 1,
                r.weight,
                r.x1,
                r.x2,
                r.y1,
                r.y2
            );
        }
        println!("  ({} block I/Os)", model.report().reads);

        let brute = topk::core::brute::top_k(&profiles, |r| r.contains(me), 10);
        assert_eq!(
            out.iter().map(|r| r.weight).collect::<Vec<_>>(),
            brute.iter().map(|r| r.weight).collect::<Vec<_>>()
        );
    }
}
