//! Theorem 2's dynamic side: a live top-k index under insertions and
//! deletions (amortized expected `O(U_pri + U_max)` per update).
//!
//! Simulates an ad marketplace: listings (active time windows, weighted by
//! bid) come and go; queries ask for the top bids live at a time instant.
//!
//! Run with: `cargo run --release --example live_updates`

use topk::core::{CostModel, EmConfig, TopKIndex};
use topk::interval::{DynTopKStabbing, Interval};

fn main() {
    let model = CostModel::new(EmConfig::new(64));
    let mut index = DynTopKStabbing::build(&model, Vec::new(), 99);
    let mut live: Vec<Interval> = Vec::new();
    let mut next_bid: u64 = 1;
    let mut rng_state: u64 = 0xDE_C0DE;
    let mut rnd = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };

    println!("day 0: marketplace opens");
    for day in 1..=5 {
        // Each day: 4000 new listings, ~1500 expirations.
        for _ in 0..4_000 {
            let start = (rnd() % 10_000) as f64;
            let dur = (rnd() % 500) as f64;
            let iv = Interval::new(start, start + dur, next_bid);
            next_bid += 1;
            index.insert(iv);
            live.push(iv);
        }
        for _ in 0..1_500 {
            if live.is_empty() {
                break;
            }
            let i = (rnd() % live.len() as u64) as usize;
            let iv = live.swap_remove(i);
            assert!(index.delete(iv.weight));
        }

        let t = (rnd() % 10_000) as f64;
        model.reset();
        let mut out = Vec::new();
        index.query_topk(&t, 5, &mut out);
        println!(
            "day {day}: {} listings live; top-5 bids at t={t:>4}: {:?} ({} I/Os)",
            index.len(),
            out.iter().map(|iv| iv.weight).collect::<Vec<_>>(),
            model.report().reads
        );

        let brute = topk::core::brute::top_k(&live, |iv| iv.stabs(t), 5);
        assert_eq!(
            out.iter().map(|iv| iv.weight).collect::<Vec<_>>(),
            brute.iter().map(|iv| iv.weight).collect::<Vec<_>>(),
            "index diverged from ground truth"
        );
    }
    println!("all answers verified against brute force ✔");
}
