//! Top-k circular range search (Corollary 1): "the 5 highest-rated points
//! of interest within r km of me", answered by lifting the 2D points onto
//! the paraboloid and running the ℝ³ halfspace machinery of Theorem 3.
//!
//! Run with: `cargo run --release --example poi_search`

use topk::core::{CostModel, EmConfig};
use topk::halfspace::circular::Disk;
use topk::halfspace::TopKCircular;
use topk::workloads::points;

fn main() {
    let model = CostModel::new(EmConfig::new(64));

    let n = 30_000;
    let pois = points::gaussian2(n, 50.0, 21);
    println!("indexing {n} points of interest (lifted to ℝ³) ...");
    let index = TopKCircular::build(&model, pois.clone(), 21);
    println!("built: {} blocks", index.space_blocks());

    let here = [(0.0, 0.0), (30.0, -12.0), (-55.0, 40.0)];
    for (cx, cy) in here {
        for radius in [5.0, 25.0] {
            let q = Disk::new((cx, cy), radius);
            model.reset();
            let mut out = Vec::new();
            index.query_topk(&q, 5, &mut out);
            println!(
                "\nwithin {radius:>4} km of ({cx:>5}, {cy:>5}): {} hits, best ratings {:?} ({} I/Os)",
                out.len(),
                out.iter().map(|p| p.weight).collect::<Vec<_>>(),
                model.report().reads
            );

            let brute = topk::core::brute::top_k(&pois, |p| q.contains(p), 5);
            assert_eq!(
                out.iter().map(|p| p.weight).collect::<Vec<_>>(),
                brute.iter().map(|p| p.weight).collect::<Vec<_>>()
            );
        }
    }
}
