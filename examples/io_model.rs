//! A tour of the external-memory cost model (`emsim`): block sizes, the
//! buffer pool, and how the same index costs different I/Os on different
//! machines — the knobs behind every experiment table.
//!
//! Run with: `cargo run --release --example io_model`

use topk::core::{CostModel, EmConfig, TopKIndex};
use topk::interval::TopKStabbing;
use topk::workloads::intervals;

fn main() {
    let n = 50_000;
    let items = intervals::uniform(n, 1_000.0, 120.0, 3);

    println!("top-10 stabbing query costs for n = {n}, varying the machine:\n");
    println!("{:>6} {:>10} {:>14} {:>12}", "B", "mem", "build blocks", "IO/query");
    for (b, mem) in [(16usize, 0usize), (64, 0), (256, 0), (64, 256), (64, 4096)] {
        let model = CostModel::new(EmConfig::with_memory(b, mem));
        let index = TopKStabbing::build(&model, items.clone(), 3);
        // Warm the pool (if any), then measure 20 queries.
        let run = || {
            model.reset();
            for i in 0..20 {
                let mut out = Vec::new();
                index.query_topk(&(i as f64 * 47.0), 10, &mut out);
            }
            model.report().reads / 20
        };
        run();
        let per_query = run();
        println!(
            "{:>6} {:>10} {:>14} {:>12}",
            b,
            if mem == 0 { "none".to_string() } else { format!("{mem} blk") },
            index.space_blocks(),
            per_query
        );
    }

    println!(
        "\nLarger blocks amortize the output term (k/B); a buffer pool\n\
         absorbs re-reads of the hot upper levels — exactly the two levers\n\
         the paper's EM bounds are written in."
    );
}
