//! Quickstart: build a top-k index from prioritized + max structures via
//! the Theorem 2 reduction, and query it.
//!
//! Run with: `cargo run --release --example quickstart`

use topk::core::{CostModel, EmConfig, IoReport, TopKIndex};
use topk::interval::{Interval, TopKStabbing};

fn main() {
    // A machine with 64-word blocks (the EM model of the paper, §1.1).
    let model = CostModel::new(EmConfig::new(64));

    // One million weighted intervals; weights must be pairwise distinct.
    let n: u64 = 200_000;
    let data: Vec<Interval> = (0..n)
        .map(|i| {
            let start = (i as f64 * 37.0) % 10_000.0;
            let len = (i as f64 * 7.3) % 150.0;
            Interval::new(start, start + len, i + 1)
        })
        .collect();

    // Assemble the top-k structure: Theorem 2 combines the segment-tree
    // prioritized structure and the §5.2 stabbing-max structure with
    // geometric (1/K_i)-samples. Expected: no performance degradation.
    println!("building top-k interval-stabbing index on n = {n} ...");
    let index = TopKStabbing::build(&model, data, /* seed */ 42);
    println!(
        "built: {} blocks, sample ladder sizes {:?}",
        index.space_blocks(),
        index.sample_sizes()
    );

    // "Report the 10 heaviest intervals stabbed by x = 5000."
    for k in [1usize, 10, 100] {
        model.reset();
        let mut out = Vec::new();
        index.query_topk(&5_000.0, k, &mut out);
        let IoReport { reads, .. } = model.report();
        println!(
            "top-{k:<4} -> {} results, heaviest weight {:?}, {} block I/Os",
            out.len(),
            out.first().map(|iv| iv.weight),
            reads
        );
        assert!(out.windows(2).all(|w| w[0].weight > w[1].weight));
    }
}
