//! The paper's §1.4 3D-dominance scenario (Theorem 6):
//!
//! > "Find the 10 best-rated hotels whose (i) prices are at most x dollars
//! > per night, (ii) distances from the town center are at most y km, and
//! > (iii) security rating is at least z."
//!
//! Coordinates are stored "smaller is better" (security is flipped to
//! `100 − security`), and the weight is the hotel's rating.
//!
//! Run with: `cargo run --release --example hotel_search`

use topk::core::{CostModel, EmConfig, TopKIndex};
use topk::dominance::{Hotel, TopKDominance};
use topk::workloads::hotels;

fn main() {
    let model = CostModel::new(EmConfig::new(64));

    // A synthetic city: 100k hotels where quality correlates with price.
    let n = 100_000;
    let data: Vec<Hotel> = hotels::correlated(n, 7);
    println!("indexing {n} hotels ...");
    let index = TopKDominance::build(&model, data.clone(), 7);
    println!("built: {} blocks", index.space_blocks());

    // Three traveler profiles.
    let profiles: [(&str, [f64; 3]); 3] = [
        // (price ≤ $80, distance ≤ 3 km, security ≥ 70 → third coord ≤ 30)
        ("budget downtown", [80.0, 3.0, 30.0]),
        ("anywhere cheap", [40.0, 100.0, 100.0]),
        ("luxury safe", [100.0, 10.0, 10.0]),
    ];

    for (name, q) in profiles {
        model.reset();
        let mut out = Vec::new();
        index.query_topk(&q, 10, &mut out);
        println!(
            "\n{name}: price ≤ ${}, distance ≤ {} km, security ≥ {}",
            q[0],
            q[1],
            100.0 - q[2]
        );
        for (rank, h) in out.iter().enumerate() {
            println!(
                "  #{:<2} rating {:>6}  price ${:<6.0} dist {:>4.1} km  security {:>3.0}",
                rank + 1,
                h.weight,
                h.coords[0],
                h.coords[1],
                100.0 - h.coords[2]
            );
        }
        println!("  ({} block I/Os)", model.report().reads);

        // Sanity: agree with brute force.
        let brute = topk::core::brute::top_k(&data, |h| h.dominated_by(&q), 10);
        assert_eq!(
            out.iter().map(|h| h.weight).collect::<Vec<_>>(),
            brute.iter().map(|h| h.weight).collect::<Vec<_>>()
        );
    }
}
